"""Common interface for distributed SpMM algorithms.

Every algorithm in the comparison (Table 4) takes a global sparse ``A``
and dense ``B``, distributes them under 1D partitioning onto a fresh
simulated cluster, executes, and returns an :class:`SpMMResult` with the
numerically correct ``C``, a per-node time breakdown, and traffic stats.
Runs whose working set exceeds node memory come back as failed results
(the paper's missing data points), never as exceptions.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..cluster.faults import ResilienceStats, resilience_stats
from ..cluster.machine import Cluster, MachineConfig
from ..cluster.simmpi import SimMPI, TrafficStats
from ..dist.matrices import DistDenseMatrix, DistSparseMatrix
from ..dist.oned import RowPartition
from ..errors import OutOfMemoryError, ShapeError
from ..runtime.threads import ThreadConfig
from ..runtime.trace import TimeBreakdown
from ..sparse.coo import COOMatrix

#: Simulated cost of setting up MPI structures before communication
#: (windows, datatypes, queues) — the paper's "Other" category.
BASE_SETUP_SECONDS = 1.0e-5


@dataclass
class SpMMResult:
    """Outcome of one distributed SpMM execution.

    Attributes:
        algorithm: algorithm name.
        C: the computed output (global array) or None on failure.
        seconds: simulated makespan.
        breakdown: per-node lane components.
        traffic: byte/message counts by category.
        failed: True when the run could not complete.
        failure: human-readable failure reason (e.g. OOM details).
        extras: algorithm-specific diagnostics.
        events: recorded communication operations, in issue order
            (capped; see ``repro.cluster.simmpi.MAX_RECORDED_EVENTS``).
    """

    algorithm: str
    C: Optional[np.ndarray]
    seconds: float
    breakdown: TimeBreakdown
    traffic: TrafficStats
    failed: bool = False
    failure: Optional[str] = None
    extras: Dict[str, Any] = field(default_factory=dict)
    events: list = field(default_factory=list)

    def speedup_over(self, other: "SpMMResult") -> float:
        """``other.seconds / self.seconds`` (paper-style speedup)."""
        if self.failed or other.failed:
            raise ValueError("cannot compare failed results")
        return other.seconds / self.seconds


@dataclass
class RunContext:
    """Everything an algorithm body needs, pre-distributed."""

    machine: MachineConfig
    cluster: Cluster
    mpi: SimMPI
    A: DistSparseMatrix
    B: DistDenseMatrix
    C: DistDenseMatrix
    threads: ThreadConfig
    breakdown: TimeBreakdown

    @property
    def n_nodes(self) -> int:
        return self.machine.n_nodes

    @property
    def k(self) -> int:
        return self.B.k


class DistSpMMAlgorithm(abc.ABC):
    """Base class: distribution, memory charging, failure capture."""

    #: Display name; subclasses override (e.g. ``"DS4"``).
    name: str = "abstract"

    def run(
        self,
        A: COOMatrix,
        B: np.ndarray,
        machine: MachineConfig,
        threads: Optional[ThreadConfig] = None,
        grid=None,
        transport=None,
    ) -> SpMMResult:
        """Distribute inputs, execute, and collect the result.

        Args:
            A: global sparse matrix, shape ``(n, m)``.
            B: global dense input, shape ``(m, K)``.
            machine: simulated machine description.
            threads: per-node thread split; derived from the machine's
                thread count when omitted.
            grid: optional process-grid layout
                (:mod:`repro.dist.grid`).  ``None`` and ``Grid1D`` take
                the identical 1D code path (byte-identical output,
                simulated seconds, and traffic events); 1.5D/2D layouts
                run each depth layer as a 1D sub-problem and reduce the
                partial outputs across the depth dimension.
            transport: data-plane selection (:mod:`repro.transport`):
                ``None``/``"sim"`` for the simulator (byte-identical to
                the pre-transport path), ``"shm"`` for real OS
                processes over shared memory (wall-clock seconds), or a
                constructed transport instance.

        Returns:
            The result; ``failed=True`` on simulated OOM.
        """
        if transport is not None:
            from ..transport import get_transport

            resolved = get_transport(transport)
            if not (isinstance(resolved, type)
                    and issubclass(resolved, SimMPI)):
                # Executor transport (shm/mpi): it owns distribution,
                # worker lifecycle, and timing end to end.
                return resolved.run_algorithm(
                    self, A, B, machine, threads=threads, grid=grid
                )
        B = np.ascontiguousarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != A.shape[1]:
            raise ShapeError(
                f"B shape {B.shape} incompatible with A shape {A.shape}"
            )
        threads = threads or ThreadConfig.for_machine(machine.threads_per_node)
        if grid is not None:
            grid.validate_nodes(machine.n_nodes)
            if grid.depth > 1:
                from .gridrun import run_on_grid

                return run_on_grid(self, A, B, machine, threads, grid)
        from ..transport.sim import SimTransport

        cluster = Cluster(machine)
        mpi = SimTransport(cluster)
        breakdown = TimeBreakdown.zeros(machine.n_nodes)
        resil_before = (
            resilience_stats().snapshot() if cluster.faults is not None
            else None
        )
        try:
            row_part = RowPartition(A.shape[0], machine.n_nodes)
            col_part = RowPartition(B.shape[0], machine.n_nodes)
            A_dist = DistSparseMatrix(A, row_part, cluster, label="A_slab")
            B_dist = DistDenseMatrix(B, col_part, cluster, label="B_block")
            C_dist = DistDenseMatrix.zeros(
                A.shape[0], B.shape[1], row_part, cluster, label="C_block"
            )
            ctx = RunContext(
                machine=machine,
                cluster=cluster,
                mpi=mpi,
                A=A_dist,
                B=B_dist,
                C=C_dist,
                threads=threads,
                breakdown=breakdown,
            )
            self._setup_cost(ctx)
            self._execute(ctx)
        except OutOfMemoryError as oom:
            result = SpMMResult(
                algorithm=self.name,
                C=None,
                seconds=float("nan"),
                breakdown=breakdown,
                traffic=mpi.traffic,
                failed=True,
                failure=str(oom),
                events=mpi.events,
            )
            self._attach_fault_extras(result, cluster, resil_before)
            return result
        result = SpMMResult(
            algorithm=self.name,
            C=ctx.C.data,
            seconds=breakdown.makespan,
            breakdown=breakdown,
            traffic=mpi.traffic,
            extras=self._extras(ctx),
            events=mpi.events,
        )
        self._attach_fault_extras(result, cluster, resil_before)
        return result

    @staticmethod
    def _attach_fault_extras(
        result: SpMMResult, cluster: Cluster, resil_before
    ) -> None:
        """Record this run's fault plan and resilience-counter deltas."""
        if cluster.faults is None or resil_before is None:
            return
        delta = ResilienceStats(
            *(
                now - before
                for now, before in zip(
                    resilience_stats().snapshot(), resil_before
                )
            )
        )
        result.extras["faults"] = cluster.faults.describe()
        result.extras["resilience"] = delta.as_dict()

    # ------------------------------------------------------------------
    def _grid_layer_algorithm(self, grid) -> "DistSpMMAlgorithm":
        """The algorithm instance that runs one grid layer.

        The default is the algorithm itself — the baselines are written
        against local ranks only, so they run unchanged inside a layer
        sub-communicator.  Subclasses whose planning depends on the
        communicator size (Two-Face's stripe classifier) return a
        re-scaled clone instead.
        """
        return self

    # ------------------------------------------------------------------
    def _setup_cost(self, ctx: RunContext) -> None:
        """Charge baseline setup time; subclasses may extend."""
        for node in ctx.breakdown.nodes:
            node.other += BASE_SETUP_SECONDS

    def _extras(self, ctx: RunContext) -> Dict[str, Any]:
        """Algorithm-specific diagnostics attached to the result."""
        return {}

    @abc.abstractmethod
    def _execute(self, ctx: RunContext) -> None:
        """Perform the distributed SpMM, filling ``ctx.C`` and the
        breakdown. Raise :class:`OutOfMemoryError` on memory exhaustion.
        """
