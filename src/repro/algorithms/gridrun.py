"""Execution of a distributed SpMM on a process grid (1.5D / 2D).

The grid layouts (:mod:`repro.dist.grid`) decompose one SpMM over
``p = p_r * depth`` ranks into ``depth`` independent 1D sub-problems
("layers"): layer ``g`` owns a subset of the columns of ``A`` (and the
matching rows of ``B``) and runs the *unchanged* 1D algorithm —
AllGather, DenseShifting, or Two-Face — over its ``p_r`` ranks against
the compacted column space.  Each layer produces a partial ``C`` over
the full row space; the partials are summed in layer order and the
reduction is charged as one allreduce per ``C`` row block across the
grid's depth dimension (fibers for 1.5D, grid rows for 2D).

The machinery here is three views plus a driver:

* :class:`SubFaultPlan` — a fault plan scoped to a layer, remapping the
  layer's local ranks onto the run's global fault plan so injected
  stragglers/link degradations hit the same physical nodes regardless
  of layout.
* :class:`SubCluster` — a cluster view over a layer's ranks.  The
  underlying :class:`~repro.cluster.machine.SimNode` objects are
  *shared* with the parent cluster, so clocks and memory ledgers land
  globally; only the rank numbering (and the barrier scope) is local.
* the per-layer :class:`~repro.cluster.simmpi.SimMPI` — each layer gets
  its own traffic/event recorder, absorbed into the parent instance
  (with rank remapping and per-dimension byte attribution) after the
  layer executes.

Algorithms participate through
``DistSpMMAlgorithm._grid_layer_algorithm``, which lets e.g. Two-Face
re-scale its classifier coefficients to the sub-communicator size
before planning a layer.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List, Sequence

import numpy as np

from ..cluster.faults import resilience_stats
from ..cluster.machine import Cluster, MachineConfig, SimNode
from ..dist.grid import ProcessGrid
from ..transport.sim import SimTransport
from ..dist.matrices import DistDenseMatrix, DistSparseMatrix
from ..dist.oned import RowPartition
from ..errors import ConfigurationError, OutOfMemoryError
from ..runtime.threads import ThreadConfig
from ..runtime.trace import TimeBreakdown
from ..sparse.coo import COOMatrix


class SubFaultPlan:
    """A layer-local view of the run's global fault plan.

    Algorithms address ranks ``0..p_r-1`` inside a layer; this view
    maps them back to the global ranks the fault plan was compiled
    for, so the same physical node misbehaves identically under every
    grid layout.
    """

    def __init__(self, parent, ranks: Sequence[int]):
        self.parent = parent
        self.config = parent.config
        self._global = tuple(ranks)

    def link_scale(self, src: int, dst: int) -> float:
        """Multiplier of the local link ``src -> dst``."""
        return self.parent.link_scale(self._global[src], self._global[dst])

    def worst_incoming_scale(self, rank: int) -> float:
        """Worst incoming-link multiplier of local ``rank``."""
        return self.parent.worst_incoming_scale(self._global[rank])

    def compute_skew(self, rank: int) -> float:
        """Compute-skew multiplier of local ``rank``."""
        return self.parent.compute_skew(self._global[rank])

    def squeeze_fraction(self, rank: int) -> float:
        """Memory-pressure fraction of local ``rank``."""
        return self.parent.squeeze_fraction(self._global[rank])

    def rget_attempt_fails(
        self, origin: int, target: int, request_index: int, attempt: int
    ) -> bool:
        """Failure decision for a local origin/target pair."""
        return self.parent.rget_attempt_fails(
            self._global[origin], self._global[target],
            request_index, attempt,
        )

    def describe(self) -> dict:
        """The global plan's summary (faults are per-run, not per-layer)."""
        return self.parent.describe()


class SubCluster:
    """A cluster view over one layer's ranks.

    Nodes are shared with the parent cluster — a clock advance or a
    ledger charge through the view is a clock advance or ledger charge
    on the global simulation.  ``barrier`` synchronises only the
    members (a sub-communicator barrier; other layers keep running).
    """

    def __init__(
        self,
        parent: Cluster,
        ranks: Sequence[int],
        config: MachineConfig,
        faults,
    ):
        if config.n_nodes != len(ranks):
            raise ConfigurationError(
                f"sub-cluster config covers {config.n_nodes} nodes but "
                f"{len(ranks)} ranks were given"
            )
        self.parent = parent
        self.ranks = tuple(ranks)
        self.config = config
        self.nodes: List[SimNode] = [parent.node(r) for r in ranks]
        self.faults = faults

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def node(self, rank: int) -> SimNode:
        """The (globally shared) node of local ``rank``."""
        if not 0 <= rank < self.n_nodes:
            raise ConfigurationError(
                f"rank {rank} out of range 0..{self.n_nodes - 1}"
            )
        return self.nodes[rank]

    def barrier(self) -> float:
        """Synchronise the member clocks only; returns that time."""
        latest = max(node.time for node in self.nodes)
        for node in self.nodes:
            node.sync_to(latest)
        return latest

    def makespan(self) -> float:
        return max(node.time for node in self.nodes)


def column_subset(A: COOMatrix, col_ids: np.ndarray) -> COOMatrix:
    """Restrict ``A`` to the (sorted) global columns ``col_ids``.

    The kept columns are compacted to ``0..len(col_ids)-1`` — the
    column space a grid layer's 1D sub-problem runs in.  Row space is
    unchanged.
    """
    n_sub = int(len(col_ids))
    if n_sub == A.shape[1]:
        return A
    if n_sub == 0:
        return COOMatrix.empty((A.shape[0], 0))
    pos = np.searchsorted(col_ids, A.cols)
    clipped = np.minimum(pos, n_sub - 1)
    sel = col_ids[clipped] == A.cols
    return COOMatrix(
        A.rows[sel], pos[sel], A.vals[sel],
        (A.shape[0], n_sub), _validated=True,
    )


def run_on_grid(
    algorithm,
    A: COOMatrix,
    B: np.ndarray,
    machine: MachineConfig,
    threads: ThreadConfig,
    grid: ProcessGrid,
):
    """Run ``algorithm`` under a non-trivial grid layout.

    Called from ``DistSpMMAlgorithm.run`` once inputs are validated;
    returns the same :class:`~repro.algorithms.base.SpMMResult`
    contract (``failed=True`` on simulated OOM).
    """
    from .base import SpMMResult  # cycle: base dispatches here

    grid.validate_nodes(machine.n_nodes)
    cluster = Cluster(machine)
    parent_mpi = SimTransport(cluster)
    breakdown = TimeBreakdown.zeros(machine.n_nodes)
    resil_before = (
        resilience_stats().snapshot() if cluster.faults is not None
        else None
    )
    sub_machine = replace(machine, n_nodes=grid.p_r)
    row_part = RowPartition(A.shape[0], grid.p_r)
    k = B.shape[1]
    layer_algo = algorithm._grid_layer_algorithm(grid)
    partials: List[np.ndarray] = []
    layer_extras: List[dict] = []
    try:
        for layer in range(grid.depth):
            ranks = grid.layer_ranks(layer)
            col_ids = grid.layer_col_ids(layer, B.shape[0])
            A_sub = column_subset(A, col_ids)
            B_sub = np.ascontiguousarray(B[col_ids])
            faults_view = (
                SubFaultPlan(cluster.faults, ranks)
                if cluster.faults is not None else None
            )
            subcluster = SubCluster(cluster, ranks, sub_machine, faults_view)
            sub_mpi = SimTransport(subcluster)
            sub_breakdown = TimeBreakdown(
                nodes=[breakdown.nodes[r] for r in ranks]
            )
            try:
                col_part = RowPartition(len(col_ids), grid.p_r)
                A_dist = DistSparseMatrix(
                    A_sub, row_part, subcluster, label="A_slab"
                )
                B_dist = DistDenseMatrix(
                    B_sub, col_part, subcluster, label="B_block"
                )
                C_dist = DistDenseMatrix.zeros(
                    A.shape[0], k, row_part, subcluster, label="C_block"
                )
                from .base import RunContext

                sub_ctx = RunContext(
                    machine=sub_machine,
                    cluster=subcluster,
                    mpi=sub_mpi,
                    A=A_dist,
                    B=B_dist,
                    C=C_dist,
                    threads=threads,
                    breakdown=sub_breakdown,
                )
                layer_algo._setup_cost(sub_ctx)
                layer_algo._execute(sub_ctx)
            finally:
                # Keep whatever the layer moved, even on a mid-layer OOM.
                parent_mpi.absorb(sub_mpi, ranks, dim=grid.intra_dim)
            partials.append(C_dist.data)
            layer_extras.append(layer_algo._extras(sub_ctx))
        C = partials[0]
        for other in partials[1:]:
            C += other
        _charge_reduction(grid, parent_mpi, breakdown, row_part, k)
    except OutOfMemoryError as oom:
        result = SpMMResult(
            algorithm=algorithm.name,
            C=None,
            seconds=float("nan"),
            breakdown=breakdown,
            traffic=parent_mpi.traffic,
            failed=True,
            failure=str(oom),
            extras={"grid": grid.describe()},
            events=parent_mpi.events,
        )
        algorithm._attach_fault_extras(result, cluster, resil_before)
        return result
    extras = {"grid": grid.describe(), "layers": layer_extras}
    result = SpMMResult(
        algorithm=algorithm.name,
        C=C,
        seconds=breakdown.makespan,
        breakdown=breakdown,
        traffic=parent_mpi.traffic,
        extras=extras,
        events=parent_mpi.events,
    )
    algorithm._attach_fault_extras(result, cluster, resil_before)
    return result


def _charge_reduction(
    grid: ProcessGrid,
    mpi: SimTransport,
    breakdown: TimeBreakdown,
    row_part: RowPartition,
    k: int,
) -> None:
    """Charge the partial-``C`` allreduce across the depth dimension.

    One ring allreduce per ``C`` row block, over the ``depth`` ranks
    holding that block's partials.  Members first meet at the group
    barrier (the wait is charged to the sync lane, the convention the
    dense-shifting baseline uses for step barriers), then pay the ring
    cost.
    """
    for block, group in enumerate(grid.reduce_groups()):
        nbytes = int(row_part.size(block) * k * 8)
        totals = [breakdown.node(r).total for r in group]
        t_max = max(totals)
        costs = mpi.group_allreduce(
            group, nbytes, label="C_allreduce", dim=grid.reduce_dim
        )
        for rank, cost, total in zip(group, costs, totals):
            breakdown.node(rank).sync_comm += (t_max - total) + cost
