"""Two-Face and Async Fine-Grained as runnable algorithms.

:class:`TwoFace` preprocesses (or reuses a supplied plan) and executes
via :mod:`repro.core.executor`.  :class:`AsyncFine` is the paper's
extreme baseline: the identical runtime with every remote stripe forced
asynchronous, i.e. pure fine-grained one-sided communication.
"""

from __future__ import annotations

from typing import Optional

from ..core.executor import execute_plan
from ..core.model import CostCoefficients
from ..core.plan import TwoFacePlan
from ..core.plancache import AUTO, PlanCacheLike, cached_preprocess
from ..core.preprocess import PreprocessReport
from ..errors import PartitionError
from ..sparse.suite import stripe_width_for
from .base import DistSpMMAlgorithm, RunContext


class TwoFace(DistSpMMAlgorithm):
    """The paper's contribution: hybrid collective + one-sided SpMM.

    Args:
        stripe_width: sparse-stripe width ``W``; defaults to the
            dimension-scaled rule of Table 1.
        coeffs: preprocessing-model coefficients (Table 3 defaults).
        plan: a precomputed plan (skips preprocessing; the plan must
            match the matrix, node count, and K of the run).
        force_all_async / force_all_sync: classification overrides used
            by baselines and ablations.
        mask: optional per-nonzero sampling mask (§5.4's sampled-GNN
            sketch); requires a precomputed ``plan`` the mask aligns
            with.
        plan_cache: plan cache for preprocessing; the default AUTO uses
            the process-global ``REPRO_PLAN_CACHE``-configured cache
            (disabled when the variable is unset), None forces a cold
            build, or pass an explicit
            :class:`~repro.core.plancache.PlanCache` (or a per-tenant
            :class:`~repro.core.plancache.PlanCacheNamespace`).
        classify_k: pin stripe classification at this dense width
            regardless of the run's actual K (serving's K-panel fusion
            needs plans for every fused width to accumulate ``C`` in
            one canonical order; see DESIGN.md §8).
    """

    name = "TwoFace"

    def __init__(
        self,
        stripe_width: Optional[int] = None,
        coeffs: Optional[CostCoefficients] = None,
        plan: Optional[TwoFacePlan] = None,
        force_all_async: bool = False,
        force_all_sync: bool = False,
        classify_override=None,
        mask=None,
        plan_cache: PlanCacheLike = AUTO,
        classify_k: Optional[int] = None,
    ):
        if mask is not None and plan is None:
            raise PartitionError(
                "a sampling mask requires the plan it aligns with"
            )
        self.stripe_width = stripe_width
        self.coeffs = coeffs
        self.plan = plan
        self.force_all_async = force_all_async
        self.force_all_sync = force_all_sync
        self.classify_override = classify_override
        self.mask = mask
        self.plan_cache = plan_cache
        self.classify_k = classify_k
        #: Grid spec stamped into plans/keys; set by the grid runner on
        #: layer clones (None = the plain 1D layout).
        self.grid = None
        self.last_plan: Optional[TwoFacePlan] = None
        self.last_report: Optional[PreprocessReport] = None

    def _execute(self, ctx: RunContext) -> None:
        plan = self.plan
        if plan is not None:
            if plan.n_nodes != ctx.n_nodes or plan.k != ctx.k:
                raise PartitionError(
                    "precomputed plan does not match this run "
                    f"(plan: p={plan.n_nodes}, K={plan.k}; "
                    f"run: p={ctx.n_nodes}, K={ctx.k})"
                )
            self.last_report = None
        else:
            width = self.stripe_width or stripe_width_for(ctx.A.shape[0])
            plan, report = cached_preprocess(
                ctx.A,
                k=ctx.k,
                stripe_width=width,
                coeffs=self.coeffs,
                machine=ctx.machine,
                panel_height=ctx.threads.panel_height,
                force_all_async=self.force_all_async,
                force_all_sync=self.force_all_sync,
                classify_override=self.classify_override,
                cache=self.plan_cache,
                classify_k=self.classify_k,
                grid=self.grid,
            )
            self.last_report = report
        self.last_plan = plan
        execute_plan(plan, ctx, mask=self.mask)

    def _grid_layer_algorithm(self, grid) -> "TwoFace":
        """A clone whose classifier matches the layer sub-communicator.

        The clone re-scales the model coefficients to the layer's
        ``p_r``-rank communicator (``CostCoefficients.for_group_size``)
        and stamps the grid onto itself so layer plans are cached and
        serialised under the grid-qualified key.  A precomputed plan or
        sampling mask describes the full 1D problem and cannot be
        re-partitioned, so those runs must stay on the 1D layout.
        """
        if self.plan is not None or self.mask is not None:
            raise PartitionError(
                "a precomputed plan/mask is bound to the 1D layout; "
                f"rebuild it per layer to run on {grid.cache_token()}"
            )
        coeffs = (
            self.coeffs if self.coeffs is not None else CostCoefficients()
        ).for_group_size(grid.p_r, grid.n_nodes)
        clone = TwoFace(
            stripe_width=self.stripe_width,
            coeffs=coeffs,
            force_all_async=self.force_all_async,
            force_all_sync=self.force_all_sync,
            classify_override=self.classify_override,
            plan_cache=self.plan_cache,
            classify_k=self.classify_k,
        )
        clone.name = self.name
        clone.grid = grid
        return clone

    def _extras(self, ctx: RunContext) -> dict:
        plan = self.last_plan
        if plan is None:
            return {}
        return {
            "sync_stripes": plan.total_sync_stripes(),
            "async_stripes": plan.total_async_stripes(),
            "local_stripes": plan.total_local_stripes(),
            "async_rows": plan.total_async_rows(),
            "mean_multicast_fanout": plan.mean_multicast_fanout(),
            "preprocess_report": self.last_report,
        }


class AsyncFine(TwoFace):
    """All-asynchronous Two-Face: the pure one-sided baseline (§2.3)."""

    name = "AsyncFine"

    def __init__(
        self,
        stripe_width: Optional[int] = None,
        coeffs: Optional[CostCoefficients] = None,
        plan_cache: PlanCacheLike = AUTO,
    ):
        super().__init__(
            stripe_width=stripe_width,
            coeffs=coeffs,
            force_all_async=True,
            plan_cache=plan_cache,
        )
