"""Dense shifting (DS) — the paper's main baseline [Bharadwaj et al.].

DS replicates ``c`` consecutive blocks of ``B`` per node with an
MPI_Allgather over *replication groups* of ``c`` ranks, then performs
``p / c`` computation steps, cyclically shifting the whole ``c``-block
bundle between groups with MPI_Sendrecv after each step.  Total
communication volume is nearly independent of ``c`` (every node still
sees all of ``B``); larger ``c`` buys fewer synchronised steps at the
price of ``c`` resident blocks — which is what makes DS4/DS8 run out of
memory on large matrices and large K (paper Figs. 9, 11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

import numpy as np

from ..errors import ConfigurationError
from ..runtime.pool import get_exec_pool
from .base import DistSpMMAlgorithm, RunContext


@dataclass
class _RankPieces:
    """One rank's slab pre-bucketed by owner block of the column."""

    by_block: Dict[int, object]  # block id -> scipy CSR piece
    nnz_by_block: Dict[int, int]
    rows_by_block: Dict[int, int]  # nonempty output rows per piece


def bucket_slab(slab, col_partition, n_blocks: int, n_cols: int) -> _RankPieces:
    """Split one rank's slab into per-owner-block scipy CSR pieces.

    Shared by the simulator path below and the shared-memory transport
    (which pre-buckets on the driver before forking workers).

    Args:
        slab: the rank's row-rebased :class:`~repro.sparse.coo.COOMatrix`.
        col_partition: the dense-row partition of ``B`` (block owners).
        n_blocks: number of ``B`` blocks (= ranks).
        n_cols: global dense row count (``B.shape[0]``; pieces span the
            full column space so ``piece @ B`` works unsliced).
    """
    import scipy.sparse as sp

    by_block: Dict[int, object] = {}
    nnz_by_block: Dict[int, int] = {}
    rows_by_block: Dict[int, int] = {}
    if slab.nnz == 0:
        return _RankPieces(by_block, nnz_by_block, rows_by_block)
    owners = col_partition.owners_of(slab.cols)
    order = np.argsort(owners, kind="stable")
    sorted_owners = owners[order]
    boundaries = np.searchsorted(sorted_owners, np.arange(n_blocks + 1))
    for block_id in range(n_blocks):
        lo, hi = boundaries[block_id], boundaries[block_id + 1]
        if lo == hi:
            continue
        sel = order[lo:hi]
        piece = sp.csr_matrix(
            (slab.vals[sel], (slab.rows[sel], slab.cols[sel])),
            shape=(slab.shape[0], n_cols),
        )
        by_block[block_id] = piece
        nnz_by_block[block_id] = int(hi - lo)
        rows_by_block[block_id] = int(len(np.unique(slab.rows[sel])))
    return _RankPieces(by_block, nnz_by_block, rows_by_block)


class DenseShifting(DistSpMMAlgorithm):
    """DS with replication factor ``c`` (DS1/DS2/DS4/DS8 in the paper)."""

    def __init__(self, replication: int = 2):
        if replication < 1:
            raise ConfigurationError(
                f"replication factor must be >= 1: {replication}"
            )
        self.replication = replication
        self.name = f"DS{replication}"

    # ------------------------------------------------------------------
    def _execute(self, ctx: RunContext) -> None:
        p = ctx.n_nodes
        c = min(self.replication, p)
        n_groups = math.ceil(p / c)
        net = ctx.machine.network
        compute = ctx.machine.compute
        k = ctx.k
        faults = ctx.cluster.faults
        max_block_bytes = ctx.B.partition.max_size() * k * 8

        # Replica bundle (c blocks) plus a same-sized receive bundle:
        # the cyclic shift is double-buffered, as in the reference
        # implementation, so peak footprint is ~2c blocks.
        bundle_blocks = c + (c if n_groups > 1 else 0)
        for rank in range(p):
            ctx.cluster.node(rank).memory.allocate(
                "DS_replicas", (bundle_blocks - 1) * max_block_bytes
            )

        pool = get_exec_pool()
        pieces = pool.map(lambda rank: self._bucket_slab(ctx, rank), p)
        groups = [
            list(range(g * c, min((g + 1) * c, p))) for g in range(n_groups)
        ]

        # Initial intra-group allgather.
        if c > 1:
            gather_cost = net.allgather_time(max_block_bytes, c)
            gathered_bytes = (c - 1) * max_block_bytes
            for rank in range(p):
                cost = gather_cost
                if faults is not None:
                    cost *= faults.worst_incoming_scale(rank)
                ctx.breakdown.node(rank).sync_comm += cost
                ctx.mpi.traffic._recv(rank, gathered_bytes)
            ctx.mpi.traffic.collective_bytes += p * gathered_bytes
            ctx.mpi.traffic.collective_ops += n_groups

        shift_bytes = c * max_block_bytes
        shift_cost = net.p2p_time(shift_bytes)
        for step in range(n_groups):

            def rank_body(rank: int) -> float:
                # Writes only C.block(rank); pool-safe within a step.
                my_group = min(rank // c, n_groups - 1)
                held = groups[(my_group + step) % n_groups]
                nnz_step = 0
                rows_step = 0
                c_block = ctx.C.block(rank)
                for block_id in held:
                    piece = pieces[rank].by_block.get(block_id)
                    if piece is None:
                        continue
                    c_block += piece @ ctx.B.data
                    nnz_step += pieces[rank].nnz_by_block[block_id]
                    rows_step += pieces[rank].rows_by_block[block_id]
                seconds = compute.sync_panel_time(
                    nnz_step, k, rows_step, ctx.threads.total
                )
                if faults is not None:
                    seconds *= faults.compute_skew(rank)
                return seconds

            comp_times = np.asarray(pool.map(rank_body, p))
            step_max = float(comp_times.max(initial=0.0))
            is_last = step == n_groups - 1
            for rank in range(p):
                node = ctx.breakdown.node(rank)
                node.sync_comp += comp_times[rank]
                # Barrier wait shows up inside the communication phase.
                node.sync_comm += step_max - comp_times[rank]
                if not is_last:
                    cost = shift_cost
                    if faults is not None:
                        # Rank r receives the bundle its neighbour held.
                        cost *= faults.link_scale((rank + 1) % p, rank)
                    node.sync_comm += cost
                    ctx.mpi.traffic.p2p_bytes += shift_bytes
                    ctx.mpi.traffic.p2p_messages += 1
                    ctx.mpi.traffic._recv(rank, shift_bytes)

    # ------------------------------------------------------------------
    def _bucket_slab(self, ctx: RunContext, rank: int) -> _RankPieces:
        """Split a rank's slab into per-block scipy CSR pieces."""
        return bucket_slab(
            ctx.A.slab(rank), ctx.B.partition, ctx.n_nodes, ctx.B.shape[0]
        )

    def _extras(self, ctx: RunContext) -> dict:
        return {"replication": self.replication}
