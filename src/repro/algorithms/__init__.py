"""Distributed sparse kernels: Two-Face, the paper's SpMM baselines,
and the §9 extensions (SDDMM, SpMV)."""

from .allgather import AllGather
from .async_coarse import AsyncCoarse
from .base import DistSpMMAlgorithm, RunContext, SpMMResult
from .dense_shifting import DenseShifting
from .registry import FIGURE_ALGORITHMS, algorithm_names, make_algorithm
from .sddmm import AllGatherSDDMM, SDDMMResult, TwoFaceSDDMM
from .spmv import distributed_spmv
from .twoface import AsyncFine, TwoFace

__all__ = [
    "AllGather",
    "AllGatherSDDMM",
    "AsyncCoarse",
    "AsyncFine",
    "DenseShifting",
    "DistSpMMAlgorithm",
    "FIGURE_ALGORITHMS",
    "RunContext",
    "SDDMMResult",
    "SpMMResult",
    "TwoFace",
    "TwoFaceSDDMM",
    "algorithm_names",
    "distributed_spmv",
    "make_algorithm",
]
