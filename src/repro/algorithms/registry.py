"""Registry of the algorithms compared in the paper (Table 4)."""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import ConfigurationError
from .allgather import AllGather
from .async_coarse import AsyncCoarse
from .base import DistSpMMAlgorithm
from .dense_shifting import DenseShifting
from .twoface import AsyncFine, TwoFace

_FACTORIES: Dict[str, Callable[[], DistSpMMAlgorithm]] = {
    "Allgather": AllGather,
    "AsyncCoarse": AsyncCoarse,
    "AsyncFine": AsyncFine,
    "DS1": lambda: DenseShifting(1),
    "DS2": lambda: DenseShifting(2),
    "DS4": lambda: DenseShifting(4),
    "DS8": lambda: DenseShifting(8),
    "TwoFace": TwoFace,
}

#: Bar order of the paper's Figs. 7-9.
FIGURE_ALGORITHMS: List[str] = [
    "Allgather", "AsyncCoarse", "AsyncFine", "DS2", "DS4", "DS8", "TwoFace",
]


def algorithm_names() -> List[str]:
    """All registered algorithm names."""
    return sorted(_FACTORIES)


def make_algorithm(name: str) -> DistSpMMAlgorithm:
    """Instantiate a registered algorithm by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; known: {sorted(_FACTORIES)}"
        ) from None
    return factory()
