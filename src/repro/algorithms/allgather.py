"""AllGather baseline: full replication of ``B`` before computing.

Each node broadcasts its block of ``B`` to all others with a single
MPI_Allgather and then computes its whole slab locally.  Simple and
latency-light, but it transfers every row of ``B`` to every node whether
needed or not, and the replicated ``B`` must fit per node — which is why
this baseline cannot run kmer at K=128 in the paper (Fig. 2).
"""

from __future__ import annotations

import numpy as np

from ..runtime.pool import get_exec_pool
from .base import DistSpMMAlgorithm, RunContext


class AllGather(DistSpMMAlgorithm):
    """Sparsity-unaware full replication (Table 4: MPI_Allgather)."""

    name = "Allgather"

    def _execute(self, ctx: RunContext) -> None:
        compute = ctx.machine.compute
        k = ctx.k
        faults = ctx.cluster.faults

        # Replicate B everywhere; this is where OOM strikes.
        ctx.mpi.allgather(ctx.B.blocks(), label="B_replica")
        gather_time = ctx.machine.network.allgather_time(
            ctx.B.partition.max_size() * k * 8, ctx.n_nodes
        )

        def rank_body(rank: int) -> float:
            # Writes only C.block(rank); pool-safe.
            slab = ctx.A.slab(rank)
            if slab.nnz:
                csr = slab.to_scipy().tocsr()
                ctx.C.block(rank)[:] += csr @ ctx.B.data
                nonempty = int(np.count_nonzero(np.diff(csr.indptr)))
            else:
                nonempty = 0
            seconds = compute.sync_panel_time(
                slab.nnz, k, nonempty, ctx.threads.total
            )
            if faults is not None:
                seconds *= faults.compute_skew(rank)
            return seconds

        comp_times = get_exec_pool().map(rank_body, ctx.n_nodes)
        for rank in range(ctx.n_nodes):
            node = ctx.breakdown.node(rank)
            if faults is None:
                node.sync_comm += gather_time
            else:
                # Ring steps pace at the participant's worst hop.
                node.sync_comm += (
                    gather_time * faults.worst_incoming_scale(rank)
                )
            node.sync_comp += comp_times[rank]
