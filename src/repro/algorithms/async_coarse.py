"""Async Coarse-Grained baseline: one-sided whole-block MPI_Get.

Each node determines which blocks of ``B`` its nonzeros touch and pulls
each of those blocks with a one-sided MPI_Get, then computes locally.
Compared to AllGather it skips blocks it does not need at all, but a
block with even one needed row is transferred whole — so for matrices
whose nonzeros touch every block (social networks) it degenerates into
full replication paid at the expensive one-sided rate (paper Figs. 7-9
show it trailing the field).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..cluster.faults import RESILIENCE_STATS, ResilienceStats
from ..cluster.simmpi import CommAccount
from ..runtime.pool import get_exec_pool
from .base import DistSpMMAlgorithm, RunContext


class AsyncCoarse(DistSpMMAlgorithm):
    """Sparsity-aware only at block granularity (Table 4: MPI_Get).

    Under fault injection the whole-block gets retry with exponential
    backoff exactly like the Two-Face async lane; a block whose attempt
    budget runs out arrives via a sync multicast from its owner instead
    (the breakdown then shows sync-lane time the healthy run never has).
    """

    name = "AsyncCoarse"

    def _execute(self, ctx: RunContext) -> None:
        net = ctx.machine.network
        compute = ctx.machine.compute
        k = ctx.k
        faults = ctx.cluster.faults

        def rank_body(
            rank: int,
        ) -> Optional[Tuple]:
            # Writes only C.block(rank); SimMPI mutations deferred into
            # the account, replayed in rank order below.
            slab = ctx.A.slab(rank)
            if slab.nnz == 0:
                return None
            account = CommAccount()
            resil = ResilienceStats() if faults is not None else None
            needed_blocks = np.unique(ctx.B.partition.owners_of(slab.cols))
            get_time = 0.0
            sync_time = 0.0
            root_costs = []
            request_seq = 0
            for block_id in needed_blocks:
                if block_id == rank:
                    continue
                owner = int(block_id)
                block = ctx.B.block(owner)
                if faults is None:
                    ctx.mpi.get_block(
                        rank, owner, block, label="B_got",
                        charge_time=False, account=account,
                    )
                    get_time += net.rget_time(int(block.nbytes), n_chunks=1)
                else:
                    a_comm, s_comm, roots, request_seq = (
                        self._resilient_get(
                            ctx, faults, rank, owner, int(block.nbytes),
                            account, resil, request_seq,
                        )
                    )
                    get_time += a_comm
                    sync_time += s_comm
                    root_costs.extend(roots)

            csr = slab.to_scipy().tocsr()
            ctx.C.block(rank)[:] += csr @ ctx.B.data
            nonempty = int(np.count_nonzero(np.diff(csr.indptr)))
            comp_time = compute.sync_panel_time(
                slab.nnz, k, nonempty, ctx.threads.total
            )
            if faults is not None:
                comp_time *= faults.compute_skew(rank)
            return account, get_time, comp_time, sync_time, root_costs, resil

        records = get_exec_pool().map(rank_body, ctx.n_nodes)
        for rank, record in enumerate(records):
            if record is None:
                continue
            account, get_time, comp_time, sync_time, root_costs, resil = (
                record
            )
            ctx.mpi.apply_account(account)
            node = ctx.breakdown.node(rank)
            # A couple of threads issue the gets concurrently.
            node.async_comm += get_time / ctx.threads.async_comm
            node.sync_comp += comp_time
            if resil is not None:
                RESILIENCE_STATS.merge_from(resil)
                node.sync_comm += sync_time
                for owner, cost in root_costs:
                    ctx.breakdown.node(owner).sync_comm += cost

    @staticmethod
    def _resilient_get(
        ctx: RunContext,
        faults,
        rank: int,
        owner: int,
        nbytes: int,
        account: CommAccount,
        resil: ResilienceStats,
        request_seq: int,
    ) -> Tuple[float, float, list, int]:
        """One whole-block get under fault injection.

        Same retry/backoff/fallback policy as the Two-Face async lane,
        with a single piece (whole-block gets have nothing to re-chunk).
        """
        cfg = faults.config
        net = ctx.machine.network
        scale = faults.link_scale(owner, rank)
        async_comm = 0.0
        sync_comm = 0.0
        root_costs = []
        attempt = 0
        while True:
            if not faults.rget_attempt_fails(
                rank, owner, request_seq, attempt
            ):
                ctx.mpi.deferred_rget_charge(
                    rank, owner, nbytes, 1, "B_got", "B_got:block", account,
                )
                async_comm += scale * net.rget_time(nbytes, n_chunks=1)
                break
            resil.rget_failures += 1
            async_comm += scale * net.rget_time(nbytes, n_chunks=1)
            ctx.mpi.deferred_rget_failure(
                rank, owner, nbytes, f"B_got:attempt{attempt}", account,
            )
            attempt += 1
            if attempt >= cfg.rget_max_attempts:
                resil.lane_fallbacks += 1
                ctx.mpi.deferred_fallback_multicast(
                    owner, rank, nbytes, "B_got", "B_got:fallback", account,
                )
                cost = scale * net.bcast_time(nbytes, 1)
                sync_comm += cost
                root_costs.append((owner, cost))
                break
            backoff = cfg.rget_backoff_base * (2 ** (attempt - 1))
            resil.retries += 1
            resil.backoff_seconds += backoff
            async_comm += backoff
        return async_comm, sync_comm, root_costs, request_seq + 1
