"""Async Coarse-Grained baseline: one-sided whole-block MPI_Get.

Each node determines which blocks of ``B`` its nonzeros touch and pulls
each of those blocks with a one-sided MPI_Get, then computes locally.
Compared to AllGather it skips blocks it does not need at all, but a
block with even one needed row is transferred whole — so for matrices
whose nonzeros touch every block (social networks) it degenerates into
full replication paid at the expensive one-sided rate (paper Figs. 7-9
show it trailing the field).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..cluster.simmpi import CommAccount
from ..runtime.pool import get_exec_pool
from .base import DistSpMMAlgorithm, RunContext


class AsyncCoarse(DistSpMMAlgorithm):
    """Sparsity-aware only at block granularity (Table 4: MPI_Get)."""

    name = "AsyncCoarse"

    def _execute(self, ctx: RunContext) -> None:
        net = ctx.machine.network
        compute = ctx.machine.compute
        k = ctx.k

        def rank_body(
            rank: int,
        ) -> Optional[Tuple[CommAccount, float, float]]:
            # Writes only C.block(rank); SimMPI mutations deferred into
            # the account, replayed in rank order below.
            slab = ctx.A.slab(rank)
            if slab.nnz == 0:
                return None
            account = CommAccount()
            needed_blocks = np.unique(ctx.B.partition.owners_of(slab.cols))
            get_time = 0.0
            for block_id in needed_blocks:
                if block_id == rank:
                    continue
                block = ctx.B.block(int(block_id))
                ctx.mpi.get_block(
                    rank, int(block_id), block, label="B_got",
                    charge_time=False, account=account,
                )
                get_time += net.rget_time(int(block.nbytes), n_chunks=1)

            csr = slab.to_scipy().tocsr()
            ctx.C.block(rank)[:] += csr @ ctx.B.data
            nonempty = int(np.count_nonzero(np.diff(csr.indptr)))
            comp_time = compute.sync_panel_time(
                slab.nnz, k, nonempty, ctx.threads.total
            )
            return account, get_time, comp_time

        records = get_exec_pool().map(rank_body, ctx.n_nodes)
        for rank, record in enumerate(records):
            if record is None:
                continue
            account, get_time, comp_time = record
            ctx.mpi.apply_account(account)
            node = ctx.breakdown.node(rank)
            # A couple of threads issue the gets concurrently.
            node.async_comm += get_time / ctx.threads.async_comm
            node.sync_comp += comp_time
