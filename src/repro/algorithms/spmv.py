"""Distributed SpMV as a special case of SpMM (paper §9).

SpMV is SpMM with K=1.  The paper notes Two-Face "may also be applicable
to accelerate SpMV ... with proper parameter tuning"; at K=1 the
coalescing distance is at its maximum (128 rows) because a uselessly
fetched row costs only one element, and the classification naturally
tilts asynchronous since dense stripes shrink to vectors.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..cluster.machine import MachineConfig
from ..errors import ShapeError
from ..sparse.coo import COOMatrix
from .base import DistSpMMAlgorithm, SpMMResult
from .twoface import TwoFace


def distributed_spmv(
    A: COOMatrix,
    x: np.ndarray,
    machine: MachineConfig,
    algorithm: Optional[DistSpMMAlgorithm] = None,
) -> Tuple[np.ndarray, SpMMResult]:
    """Compute ``y = A @ x`` on the simulated cluster.

    Args:
        A: sparse matrix, shape ``(n, m)``.
        x: dense vector of length ``m``.
        machine: simulated machine.
        algorithm: distributed algorithm (Two-Face by default).

    Returns:
        ``(y, result)`` where ``y`` has length ``n`` and ``result`` is
        the full SpMM result (K=1) for inspection.

    Raises:
        ShapeError: if ``x`` is not a vector of length ``A.shape[1]``.
        ReproError: if the underlying run fails.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.ndim != 1:
        raise ShapeError(f"x must be a vector, got ndim={x.ndim}")
    if len(x) != A.shape[1]:
        raise ShapeError(
            f"x has length {len(x)} but A has {A.shape[1]} columns"
        )
    algorithm = algorithm if algorithm is not None else TwoFace()
    result = algorithm.run(A, x[:, None], machine)
    if result.failed:
        from ..errors import ReproError

        raise ReproError(f"distributed SpMV failed: {result.failure}")
    return result.C[:, 0], result
