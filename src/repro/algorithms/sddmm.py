"""Distributed SDDMM: the paper's §9 extension.

Sampled Dense-Dense Matrix Multiplication computes
``S = A (*) (X @ Y^T)`` — one dot product per nonzero of ``A``.  Its
communication pattern is *identical* to SpMM's under 1D partitioning:
``X`` rows and the sparse output are node-local, and the only remote
accesses are to rows of ``Y`` indexed by nonzero column ids — exactly
the role ``B`` plays in SpMM.  Two-Face therefore applies unchanged:
the same stripes, the same classification, even the same preprocessed
plan, with only the local kernels swapped (dot products instead of
row accumulations; no atomics, since every output value has a single
writer).

Two algorithms are provided: :class:`TwoFaceSDDMM` (reusing the SpMM
plan machinery) and :class:`AllGatherSDDMM` (full replication of ``Y``)
as the sparsity-unaware baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

import numpy as np

from ..cluster.machine import Cluster, MachineConfig
from ..cluster.simmpi import SimMPI, TrafficStats
from ..core.executor import TWOFACE_SETUP_SECONDS
from ..core.model import CostCoefficients
from ..core.plan import TwoFacePlan
from ..core.preprocess import preprocess
from ..dist.matrices import DistDenseMatrix, DistSparseMatrix
from ..dist.oned import RowPartition
from ..errors import OutOfMemoryError, PartitionError, ShapeError
from ..runtime.threads import ThreadConfig, max_coalescing_gap
from ..runtime.trace import TimeBreakdown
from ..sparse.coo import COOMatrix
from ..sparse.ops import _dot_rows
from ..sparse.suite import stripe_width_for
from .base import BASE_SETUP_SECONDS


@dataclass
class SDDMMResult:
    """Outcome of one distributed SDDMM execution.

    Attributes:
        algorithm: algorithm name.
        S: sparse result (``A``'s pattern, computed values) or None.
        seconds: simulated makespan.
        breakdown: per-node lane components.
        traffic: byte/message counts.
        failed / failure: OOM reporting, as for SpMM.
        extras: algorithm-specific diagnostics.
    """

    algorithm: str
    S: Optional[COOMatrix]
    seconds: float
    breakdown: TimeBreakdown
    traffic: TrafficStats
    failed: bool = False
    failure: Optional[str] = None
    extras: Dict[str, Any] = field(default_factory=dict)


def _validate(A: COOMatrix, X: np.ndarray, Y: np.ndarray) -> None:
    if X.ndim != 2 or Y.ndim != 2 or X.shape[1] != Y.shape[1]:
        raise ShapeError(f"X {X.shape} / Y {Y.shape} must share K")
    if A.shape[0] != X.shape[0] or A.shape[1] != Y.shape[0]:
        raise ShapeError(
            f"A {A.shape} incompatible with X {X.shape} / Y {Y.shape}"
        )


class _SDDMMBase:
    """Distribution and failure plumbing shared by SDDMM algorithms."""

    name = "abstract-sddmm"

    def run(
        self,
        A: COOMatrix,
        X: np.ndarray,
        Y: np.ndarray,
        machine: MachineConfig,
        threads: Optional[ThreadConfig] = None,
    ) -> SDDMMResult:
        """Distribute, execute, and collect the SDDMM result."""
        X = np.ascontiguousarray(X, dtype=np.float64)
        Y = np.ascontiguousarray(Y, dtype=np.float64)
        _validate(A, X, Y)
        # SDDMM writes one value per coordinate; duplicate coordinates
        # are summed up-front so the output pattern is well-defined.
        A = A.sum_duplicates()
        threads = threads or ThreadConfig.for_machine(
            machine.threads_per_node
        )
        cluster = Cluster(machine)
        mpi = SimMPI(cluster)
        breakdown = TimeBreakdown.zeros(machine.n_nodes)
        for node in breakdown.nodes:
            node.other += BASE_SETUP_SECONDS
        try:
            row_part = RowPartition(A.shape[0], machine.n_nodes)
            col_part = RowPartition(A.shape[1], machine.n_nodes)
            A_dist = DistSparseMatrix(A, row_part, cluster, label="A_slab")
            X_dist = DistDenseMatrix(X, row_part, cluster, label="X_block")
            Y_dist = DistDenseMatrix(Y, col_part, cluster, label="Y_block")
            # Sparse output: same footprint as A's values.
            for rank in range(machine.n_nodes):
                cluster.node(rank).memory.allocate(
                    "S_vals", A_dist.slab(rank).nnz * 8
                )
            values = self._execute(
                A, A_dist, X_dist, Y_dist, mpi, threads, breakdown
            )
        except OutOfMemoryError as oom:
            return SDDMMResult(
                algorithm=self.name, S=None, seconds=float("nan"),
                breakdown=breakdown, traffic=mpi.traffic,
                failed=True, failure=str(oom),
            )
        S = COOMatrix(A.rows, A.cols, values, A.shape, _validated=True)
        return SDDMMResult(
            algorithm=self.name,
            S=S,
            seconds=breakdown.makespan,
            breakdown=breakdown,
            traffic=mpi.traffic,
            extras=self._extras(),
        )

    def _extras(self) -> Dict[str, Any]:
        return {}

    def _execute(self, A, A_dist, X_dist, Y_dist, mpi, threads, breakdown):
        raise NotImplementedError


class AllGatherSDDMM(_SDDMMBase):
    """Sparsity-unaware baseline: replicate all of ``Y`` first."""

    name = "AllgatherSDDMM"

    def _execute(self, A, A_dist, X_dist, Y_dist, mpi, threads, breakdown):
        compute = mpi.cluster.config.compute
        k = Y_dist.k
        mpi.allgather(Y_dist.blocks(), label="Y_replica")
        gather_time = mpi.network.allgather_time(
            Y_dist.partition.max_size() * k * 8, mpi.n_nodes
        )
        values = np.zeros(A.nnz, dtype=np.float64)
        order = np.argsort(A_dist.partition.owners_of(A.rows), kind="stable")
        position = 0
        for rank in range(mpi.n_nodes):
            slab = A_dist.slab(rank)
            row_lo, _ = A_dist.partition.bounds(rank)
            if slab.nnz:
                vals = slab.vals * _dot_rows(
                    X_dist.data[slab.rows + row_lo], Y_dist.data[slab.cols]
                )
                values[order[position : position + slab.nnz]] = vals
            position += slab.nnz
            node = breakdown.node(rank)
            node.sync_comm += gather_time
            node.sync_comp += compute.sddmm_panel_time(
                slab.nnz, k, threads.total
            )
        return values


class TwoFaceSDDMM(_SDDMMBase):
    """Two-Face applied to SDDMM: same plan, swapped kernels.

    Args:
        stripe_width / coeffs: as for SpMM Two-Face.
        plan: a precomputed plan — including one produced for *SpMM* on
            the same matrix, node count, and K, since the communication
            structure is identical.
    """

    name = "TwoFaceSDDMM"

    def __init__(
        self,
        stripe_width: Optional[int] = None,
        coeffs: Optional[CostCoefficients] = None,
        plan: Optional[TwoFacePlan] = None,
    ):
        self.stripe_width = stripe_width
        self.coeffs = coeffs
        self.plan = plan
        self.last_plan: Optional[TwoFacePlan] = None

    def _extras(self) -> Dict[str, Any]:
        plan = self.last_plan
        if plan is None:
            return {}
        return {
            "sync_stripes": plan.total_sync_stripes(),
            "async_stripes": plan.total_async_stripes(),
        }

    def _execute(self, A, A_dist, X_dist, Y_dist, mpi, threads, breakdown):
        k = Y_dist.k
        plan = self.plan
        if plan is None:
            width = self.stripe_width or stripe_width_for(A.shape[0])
            plan, _ = preprocess(
                A_dist, k=k, stripe_width=width, coeffs=self.coeffs,
                machine=mpi.cluster.config, panel_height=threads.panel_height,
            )
        elif plan.n_nodes != mpi.n_nodes or plan.k != k:
            raise PartitionError(
                f"plan (p={plan.n_nodes}, K={plan.k}) does not match run "
                f"(p={mpi.n_nodes}, K={k})"
            )
        self.last_plan = plan
        for node in breakdown.nodes:
            node.other += TWOFACE_SETUP_SECONDS

        net = mpi.network
        compute = mpi.cluster.config.compute
        geometry = plan.geometry
        # Phase 1: identical collective transfers of dense (Y) stripes.
        for gid, dests in sorted(plan.stripe_destinations.items()):
            receivers = [
                d for d in dests if d != geometry.owner_of_stripe(gid)
            ]
            if not receivers:
                continue
            lo, hi = geometry.col_bounds(gid)
            payload = Y_dist.data[lo:hi]
            mpi.multicast(
                geometry.owner_of_stripe(gid), payload, receivers,
                label="dense_stripe_recv", charge_time=False,
            )
            cost = net.bcast_time(int(payload.nbytes), len(receivers))
            breakdown.node(geometry.owner_of_stripe(gid)).sync_comm += cost
            for dest in receivers:
                breakdown.node(dest).sync_comm += cost

        # Phases 2+3: per-rank value computation.
        values = np.zeros(A.nnz, dtype=np.float64)
        owners = A_dist.partition.owners_of(A.rows)
        order = np.argsort(owners, kind="stable")
        boundaries = np.searchsorted(
            owners[order], np.arange(mpi.n_nodes + 1)
        )
        max_gap = max_coalescing_gap(k)
        for rank in range(mpi.n_nodes):
            rank_plan = plan.rank_plan(rank)
            node = breakdown.node(rank)
            ledger = mpi.cluster.node(rank).memory
            row_lo, _ = A_dist.partition.bounds(rank)
            slab = A_dist.slab(rank)
            slab_order = order[boundaries[rank] : boundaries[rank + 1]]
            slab_values = np.zeros(slab.nnz, dtype=np.float64)
            key_to_pos = _nnz_position_index(slab)

            # Async stripes: fetch Y rows, dot products, no atomics.
            comm_seconds = 0.0
            for stripe in rank_plan.async_matrix.stripes:
                block_start, _ = Y_dist.partition.bounds(stripe.owner)
                schedule = stripe.ensure_schedule(block_start, max_gap)
                packed = schedule.packed
                if (len(schedule.fetched_ids) == 0 and stripe.nnz) or (
                    np.any(
                        schedule.fetched_ids[packed]
                        != stripe.nonzeros.cols
                    )
                ):
                    raise PartitionError(
                        f"stripe {stripe.gid}: fetched rows do not cover "
                        "the stripe's c_ids"
                    )
                fetched = mpi.rget_row_chunks(
                    rank, stripe.owner, Y_dist.block(stripe.owner),
                    schedule.chunk_offsets, schedule.chunk_sizes,
                    label="async_rows", rows=schedule.local_rows(),
                    charge_time=False,
                )
                comm_seconds += net.rget_time(
                    int(fetched.nbytes), n_chunks=schedule.n_chunks
                )
                vals = stripe.nonzeros.vals * _dot_rows(
                    X_dist.data[stripe.nonzeros.rows + row_lo],
                    fetched[packed],
                )
                _scatter_values(
                    slab_values, key_to_pos, stripe.nonzeros, vals, slab
                )
                node.async_comp += compute.sddmm_stripe_time(
                    stripe.nnz, k, threads.async_comp, n_stripes=1
                )
                ledger.free("async_rows")
            node.async_comm += comm_seconds / threads.async_comm

            # Sync/local row panels: coverage is guaranteed by the same
            # multicast metadata as SpMM.
            sync_coo = rank_plan.sync_local.csr.to_coo()
            if sync_coo.nnz:
                vals = sync_coo.vals * _dot_rows(
                    X_dist.data[sync_coo.rows + row_lo],
                    Y_dist.data[sync_coo.cols],
                )
                _scatter_values(
                    slab_values, key_to_pos, sync_coo, vals, slab
                )
            node.sync_comp += compute.sddmm_panel_time(
                sync_coo.nnz, k, threads.sync_comp
            )
            values[slab_order] = slab_values
        return values


def _nnz_position_index(slab: COOMatrix) -> Dict[str, np.ndarray]:
    """Sorted (row, col) key index into the slab's nonzero storage."""
    keys = slab.rows * slab.shape[1] + slab.cols
    order = np.argsort(keys, kind="stable")
    return {"keys": keys[order], "positions": order}


def _scatter_values(
    out: np.ndarray,
    index: Dict[str, np.ndarray],
    coo: COOMatrix,
    vals: np.ndarray,
    slab: COOMatrix,
) -> None:
    """Write per-nonzero values back to slab storage order."""
    keys = coo.rows * slab.shape[1] + coo.cols
    pos = np.searchsorted(index["keys"], keys)
    if np.any(index["keys"][pos] != keys):
        raise PartitionError("plan nonzeros do not match the slab")
    out[index["positions"][pos]] = vals
