"""Plain-text table/series rendering for the benchmark harness.

Benchmarks print the same rows and series the paper's tables and figures
report; these helpers keep the formatting consistent and readable in
pytest output.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_cell(value) -> str:
    """Render one table cell: floats compactly, None/NaN as missing."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if value != value:  # NaN
            return "OOM"
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table."""
    str_rows: List[List[str]] = [
        [format_cell(cell) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
) -> None:
    """Print an aligned text table, framed by blank lines."""
    print()
    print(format_table(headers, rows, title=title))
    print()
