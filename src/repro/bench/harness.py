"""Experiment harness: run algorithm x matrix x K sweeps and tabulate.

Used by every file in ``benchmarks/`` to regenerate the paper's tables
and figures.  Matrices and dense inputs are cached per (name, size, K)
so a benchmark session does not regenerate them per algorithm.

Sweeps run serially by default (deterministic, CI-friendly).  Set
``REPRO_BENCH_WORKERS=N`` (or pass ``workers=N``) to fan the
(matrix x algorithm) cells of a sweep across a ``concurrent.futures``
process pool; results are identical because every cell is an
independent simulation, and they are reassembled in deterministic cell
order regardless of completion order.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.base import SpMMResult
from ..algorithms.registry import make_algorithm
from ..algorithms.twoface import AsyncFine, TwoFace
from ..cluster.machine import MachineConfig
from ..core.model import CostCoefficients
from ..core.plancache import AUTO, PlanCache, PlanCacheLike
from ..errors import ConfigurationError
from ..sparse import suite
from ..sparse.coo import COOMatrix

#: Environment variable selecting the sweep process-pool width.
WORKERS_ENV = "REPRO_BENCH_WORKERS"


def bench_workers_from_env() -> int:
    """Worker count requested via ``REPRO_BENCH_WORKERS`` (default 1)."""
    raw = os.environ.get(WORKERS_ENV, "").strip()
    if not raw:
        return 1
    try:
        workers = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{WORKERS_ENV} must be an integer, got {raw!r}"
        ) from None
    if workers < 1:
        raise ConfigurationError(
            f"{WORKERS_ENV} must be >= 1, got {workers}"
        )
    return workers


@dataclass
class SweepResult:
    """Results of one (matrices x algorithms) sweep at fixed K and p."""

    k: int
    machine: MachineConfig
    #: matrix name -> algorithm name -> result
    results: Dict[str, Dict[str, SpMMResult]] = field(default_factory=dict)

    def seconds(self, matrix: str, algorithm: str) -> float:
        """Simulated seconds; NaN when the run failed (OOM)."""
        return self.results[matrix][algorithm].seconds

    def wall_seconds(self, matrix: str, algorithm: str) -> Optional[float]:
        """Host wall-clock seconds the cell took (perf telemetry)."""
        return self.results[matrix][algorithm].extras.get("wall_seconds")

    def speedup_over(
        self, matrix: str, algorithm: str, baseline: str
    ) -> float:
        """Paper-style speedup of ``algorithm`` over ``baseline``."""
        base = self.results[matrix][baseline]
        target = self.results[matrix][algorithm]
        if base.failed or target.failed:
            return float("nan")
        return base.seconds / target.seconds

    def speedup_rows(
        self, algorithms: Sequence[str], baseline: str = "DS2"
    ) -> List[List]:
        """Rows of matrix + speedups, ready for printing."""
        rows = []
        for matrix in self.results:
            row: List = [matrix]
            for algorithm in algorithms:
                row.append(self.speedup_over(matrix, algorithm, baseline))
            rows.append(row)
        return rows

    def seconds_summary(self, algorithm: str) -> Dict[str, float]:
        """p50/p95/p99 simulated seconds of one algorithm's column.

        Uses the shared percentile helpers from
        :mod:`repro.bench.telemetry` (the same aggregation path as
        serving latency) over the matrices that completed; failed
        (OOM) cells are excluded.
        """
        from .telemetry import latency_summary

        seconds = [
            result.seconds
            for by_algo in self.results.values()
            for name, result in by_algo.items()
            if name == algorithm and not result.failed
        ]
        return latency_summary(seconds)


class ExperimentHarness:
    """Caches matrices/inputs and runs algorithm sweeps.

    Args:
        size: suite size class used for all matrices.
        coeffs: Two-Face model coefficients shared by all Two-Face /
            Async Fine runs (defaults to the simulator-calibrated set).
        seed: RNG seed for dense inputs.
        plan_cache: plan cache shared by all Two-Face / Async Fine
            cells: "auto" (default) resolves ``REPRO_PLAN_CACHE``,
            None disables caching, a string is a cache directory, or
            pass a :class:`~repro.core.plancache.PlanCache`.  Repeat
            sweeps over the same grid then reuse every plan.
    """

    def __init__(
        self,
        size: str = "default",
        coeffs: Optional[CostCoefficients] = None,
        seed: int = 1,
        plan_cache: PlanCacheLike = AUTO,
    ):
        self.size = size
        self.coeffs = coeffs if coeffs is not None else CostCoefficients()
        self.seed = seed
        # Keep the picklable spec for process-pool workers; directory
        # strings become a real PlanCache here on the host.
        self._plan_cache_spec = _plan_cache_spec(plan_cache)
        if isinstance(plan_cache, str) and plan_cache != AUTO:
            plan_cache = PlanCache(cache_dir=plan_cache)
        self.plan_cache = plan_cache
        self._matrices: Dict[str, COOMatrix] = {}
        self._dense: Dict[Tuple[str, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def matrix(self, name: str) -> COOMatrix:
        """The cached suite matrix ``name``."""
        if name not in self._matrices:
            self._matrices[name] = suite.load(name, size=self.size)
        return self._matrices[name]

    def dense_input(self, name: str, k: int) -> np.ndarray:
        """A cached random dense input of width ``k`` for ``name``."""
        key = (name, k)
        if key not in self._dense:
            rng = np.random.default_rng(self.seed)
            A = self.matrix(name)
            self._dense[key] = rng.standard_normal((A.shape[1], k))
        return self._dense[key]

    def make(self, algorithm: str):
        """Instantiate an algorithm, wiring shared coefficients."""
        if algorithm == "TwoFace":
            return TwoFace(coeffs=self.coeffs, plan_cache=self.plan_cache)
        if algorithm == "AsyncFine":
            return AsyncFine(coeffs=self.coeffs, plan_cache=self.plan_cache)
        return make_algorithm(algorithm)

    # ------------------------------------------------------------------
    def run_one(
        self,
        matrix: str,
        algorithm: str,
        k: int,
        machine: MachineConfig,
        grid=None,
        transport=None,
    ) -> SpMMResult:
        """Run one (matrix, algorithm, K) cell.

        The host wall-clock time of the cell is recorded in
        ``result.extras["wall_seconds"]`` for perf telemetry; it never
        affects the simulated seconds.  ``grid`` selects a process-grid
        layout (None = plain 1D; see :mod:`repro.dist.grid`);
        ``transport`` selects the data plane (None/"sim"/"shm" or an
        instance; see :mod:`repro.transport`).  An executor transport
        reports its own wall clock (the worker makespan), which is
        kept; only simulator cells get the host cell time filled in.
        """
        A = self.matrix(matrix)
        B = self.dense_input(matrix, k)
        started = time.perf_counter()
        result = self.make(algorithm).run(
            A, B, machine, grid=grid, transport=transport
        )
        result.extras.setdefault(
            "wall_seconds", time.perf_counter() - started
        )
        return result

    def sweep(
        self,
        matrices: Sequence[str],
        algorithms: Sequence[str],
        k: int,
        machine: Optional[MachineConfig] = None,
        workers: Optional[int] = None,
    ) -> SweepResult:
        """Run a full matrices x algorithms sweep at one K.

        Args:
            matrices / algorithms / k / machine: the sweep grid.
            workers: process-pool width; defaults to
                ``REPRO_BENCH_WORKERS`` (1 = serial).
        """
        if not matrices or not algorithms:
            raise ConfigurationError("need at least one matrix and algorithm")
        machine = machine or MachineConfig(n_nodes=32)
        workers = workers if workers is not None else bench_workers_from_env()
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        sweep = SweepResult(k=k, machine=machine)
        cells = [(m, a) for m in matrices for a in algorithms]
        if workers == 1 or len(cells) == 1:
            outcomes = [
                self.run_one(m, a, k, machine) for m, a in cells
            ]
        else:
            outcomes = self._sweep_parallel(cells, k, machine, workers)
        for (matrix, algorithm), result in zip(cells, outcomes):
            sweep.results.setdefault(matrix, {})[algorithm] = result
        return sweep

    def _sweep_parallel(
        self,
        cells: Sequence[Tuple[str, str]],
        k: int,
        machine: MachineConfig,
        workers: int,
    ) -> List[SpMMResult]:
        """Fan cells across a process pool; results in cell order.

        Each worker process builds one harness (same size/coeffs/seed,
        so identical matrices and dense inputs) and keeps it for all
        cells it serves — the matrix cache amortises across cells as in
        the serial path.
        """
        import concurrent.futures

        workers = min(workers, len(cells))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            initializer=_pool_worker_init,
            initargs=(
                self.size, self.coeffs, self.seed, self._plan_cache_spec
            ),
        ) as pool:
            futures = [
                pool.submit(_pool_worker_run, matrix, algorithm, k, machine)
                for matrix, algorithm in cells
            ]
            return [f.result() for f in futures]


# ----------------------------------------------------------------------
# Process-pool plumbing (module level so it pickles cleanly)
# ----------------------------------------------------------------------
_POOL_HARNESS: Optional["ExperimentHarness"] = None


def _plan_cache_spec(plan_cache: PlanCacheLike):
    """Reduce a plan-cache argument to a picklable worker spec.

    A memory-only :class:`PlanCache` cannot be shared with worker
    processes (and its lock does not pickle), so it degrades to None
    there; a directory-backed cache is shared through its directory.
    """
    if isinstance(plan_cache, PlanCache):
        if plan_cache.cache_dir is None:
            return None
        return str(plan_cache.cache_dir)
    return plan_cache  # AUTO / None / a directory string


def _pool_worker_init(size: str, coeffs, seed: int, plan_cache=AUTO) -> None:
    global _POOL_HARNESS
    _POOL_HARNESS = ExperimentHarness(
        size=size, coeffs=coeffs, seed=seed, plan_cache=plan_cache
    )


def _pool_worker_run(
    matrix: str, algorithm: str, k: int, machine: MachineConfig
) -> SpMMResult:
    assert _POOL_HARNESS is not None, "pool worker not initialised"
    return _POOL_HARNESS.run_one(matrix, algorithm, k, machine)


def sweep_records(sweep: SweepResult) -> List[Dict]:
    """Flatten a sweep into JSON-ready records (one per run).

    Each record carries the identifying keys, the simulated time (null
    when the run failed), and the headline traffic/breakdown numbers —
    enough to re-plot any of the paper's figures without re-running.
    """
    records: List[Dict] = []
    for matrix, by_algo in sweep.results.items():
        for algorithm, result in by_algo.items():
            means = result.breakdown.component_means()
            records.append(
                {
                    "matrix": matrix,
                    "algorithm": algorithm,
                    "k": sweep.k,
                    "n_nodes": sweep.machine.n_nodes,
                    "failed": result.failed,
                    "seconds": None if result.failed else result.seconds,
                    "wall_seconds": result.extras.get("wall_seconds"),
                    "sync_comm": means.sync_comm,
                    "sync_comp": means.sync_comp,
                    "async_comm": means.async_comm,
                    "async_comp": means.async_comp,
                    "other": means.other,
                    "collective_bytes": result.traffic.collective_bytes,
                    "p2p_bytes": result.traffic.p2p_bytes,
                    "onesided_bytes": result.traffic.onesided_bytes,
                    "onesided_requests": result.traffic.onesided_requests,
                    "events_dropped": result.traffic.events_dropped,
                }
            )
    return records


def save_sweep_json(sweep: SweepResult, path) -> None:
    """Persist a sweep's records as JSON (for external plotting)."""
    import json

    with open(path, "w", encoding="ascii") as handle:
        json.dump(sweep_records(sweep), handle, indent=2, sort_keys=True)


def load_sweep_json(path) -> List[Dict]:
    """Load records written by :func:`save_sweep_json`."""
    import json

    with open(path, "r", encoding="ascii") as handle:
        return json.load(handle)
