"""Experiment harness: run algorithm x matrix x K sweeps and tabulate.

Used by every file in ``benchmarks/`` to regenerate the paper's tables
and figures.  Matrices and dense inputs are cached per (name, size, K)
so a benchmark session does not regenerate them per algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..algorithms.base import SpMMResult
from ..algorithms.registry import make_algorithm
from ..algorithms.twoface import AsyncFine, TwoFace
from ..cluster.machine import MachineConfig
from ..core.model import CostCoefficients
from ..errors import ConfigurationError
from ..sparse import suite
from ..sparse.coo import COOMatrix


@dataclass
class SweepResult:
    """Results of one (matrices x algorithms) sweep at fixed K and p."""

    k: int
    machine: MachineConfig
    #: matrix name -> algorithm name -> result
    results: Dict[str, Dict[str, SpMMResult]] = field(default_factory=dict)

    def seconds(self, matrix: str, algorithm: str) -> float:
        """Simulated seconds; NaN when the run failed (OOM)."""
        return self.results[matrix][algorithm].seconds

    def speedup_over(
        self, matrix: str, algorithm: str, baseline: str
    ) -> float:
        """Paper-style speedup of ``algorithm`` over ``baseline``."""
        base = self.results[matrix][baseline]
        target = self.results[matrix][algorithm]
        if base.failed or target.failed:
            return float("nan")
        return base.seconds / target.seconds

    def speedup_rows(
        self, algorithms: Sequence[str], baseline: str = "DS2"
    ) -> List[List]:
        """Rows of matrix + speedups, ready for printing."""
        rows = []
        for matrix in self.results:
            row: List = [matrix]
            for algorithm in algorithms:
                row.append(self.speedup_over(matrix, algorithm, baseline))
            rows.append(row)
        return rows


class ExperimentHarness:
    """Caches matrices/inputs and runs algorithm sweeps.

    Args:
        size: suite size class used for all matrices.
        coeffs: Two-Face model coefficients shared by all Two-Face /
            Async Fine runs (defaults to the simulator-calibrated set).
        seed: RNG seed for dense inputs.
    """

    def __init__(
        self,
        size: str = "default",
        coeffs: Optional[CostCoefficients] = None,
        seed: int = 1,
    ):
        self.size = size
        self.coeffs = coeffs if coeffs is not None else CostCoefficients()
        self.seed = seed
        self._matrices: Dict[str, COOMatrix] = {}
        self._dense: Dict[Tuple[str, int], np.ndarray] = {}

    # ------------------------------------------------------------------
    def matrix(self, name: str) -> COOMatrix:
        """The cached suite matrix ``name``."""
        if name not in self._matrices:
            self._matrices[name] = suite.load(name, size=self.size)
        return self._matrices[name]

    def dense_input(self, name: str, k: int) -> np.ndarray:
        """A cached random dense input of width ``k`` for ``name``."""
        key = (name, k)
        if key not in self._dense:
            rng = np.random.default_rng(self.seed)
            A = self.matrix(name)
            self._dense[key] = rng.standard_normal((A.shape[1], k))
        return self._dense[key]

    def make(self, algorithm: str):
        """Instantiate an algorithm, wiring shared coefficients."""
        if algorithm == "TwoFace":
            return TwoFace(coeffs=self.coeffs)
        if algorithm == "AsyncFine":
            return AsyncFine(coeffs=self.coeffs)
        return make_algorithm(algorithm)

    # ------------------------------------------------------------------
    def run_one(
        self,
        matrix: str,
        algorithm: str,
        k: int,
        machine: MachineConfig,
    ) -> SpMMResult:
        """Run one (matrix, algorithm, K) cell."""
        A = self.matrix(matrix)
        B = self.dense_input(matrix, k)
        return self.make(algorithm).run(A, B, machine)

    def sweep(
        self,
        matrices: Sequence[str],
        algorithms: Sequence[str],
        k: int,
        machine: Optional[MachineConfig] = None,
    ) -> SweepResult:
        """Run a full matrices x algorithms sweep at one K."""
        if not matrices or not algorithms:
            raise ConfigurationError("need at least one matrix and algorithm")
        machine = machine or MachineConfig(n_nodes=32)
        sweep = SweepResult(k=k, machine=machine)
        for matrix in matrices:
            sweep.results[matrix] = {}
            for algorithm in algorithms:
                sweep.results[matrix][algorithm] = self.run_one(
                    matrix, algorithm, k, machine
                )
        return sweep


def sweep_records(sweep: SweepResult) -> List[Dict]:
    """Flatten a sweep into JSON-ready records (one per run).

    Each record carries the identifying keys, the simulated time (null
    when the run failed), and the headline traffic/breakdown numbers —
    enough to re-plot any of the paper's figures without re-running.
    """
    records: List[Dict] = []
    for matrix, by_algo in sweep.results.items():
        for algorithm, result in by_algo.items():
            means = result.breakdown.component_means()
            records.append(
                {
                    "matrix": matrix,
                    "algorithm": algorithm,
                    "k": sweep.k,
                    "n_nodes": sweep.machine.n_nodes,
                    "failed": result.failed,
                    "seconds": None if result.failed else result.seconds,
                    "sync_comm": means.sync_comm,
                    "sync_comp": means.sync_comp,
                    "async_comm": means.async_comm,
                    "async_comp": means.async_comp,
                    "other": means.other,
                    "collective_bytes": result.traffic.collective_bytes,
                    "p2p_bytes": result.traffic.p2p_bytes,
                    "onesided_bytes": result.traffic.onesided_bytes,
                    "onesided_requests": result.traffic.onesided_requests,
                }
            )
    return records


def save_sweep_json(sweep: SweepResult, path) -> None:
    """Persist a sweep's records as JSON (for external plotting)."""
    import json

    with open(path, "w", encoding="ascii") as handle:
        json.dump(sweep_records(sweep), handle, indent=2, sort_keys=True)


def load_sweep_json(path) -> List[Dict]:
    """Load records written by :func:`save_sweep_json`."""
    import json

    with open(path, "r", encoding="ascii") as handle:
        return json.load(handle)
