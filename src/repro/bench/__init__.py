"""Benchmark harness: sweeps, result tables, text reporting."""

from .harness import (
    ExperimentHarness,
    SweepResult,
    load_sweep_json,
    save_sweep_json,
    sweep_records,
)
from .reporting import format_cell, format_table, print_table

__all__ = [
    "ExperimentHarness",
    "SweepResult",
    "format_cell",
    "format_table",
    "load_sweep_json",
    "print_table",
    "save_sweep_json",
    "sweep_records",
]
