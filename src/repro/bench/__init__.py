"""Benchmark harness: sweeps, result tables, text reporting."""

from .harness import (
    ExperimentHarness,
    SweepResult,
    WORKERS_ENV,
    bench_workers_from_env,
    load_sweep_json,
    save_sweep_json,
    sweep_records,
)
from .reporting import format_cell, format_table, print_table
from .telemetry import (
    PERF_SCHEMA,
    PerfCell,
    PerfLog,
    latency_summary,
    load_perf_json,
    percentile,
)

__all__ = [
    "ExperimentHarness",
    "PERF_SCHEMA",
    "PerfCell",
    "PerfLog",
    "SweepResult",
    "WORKERS_ENV",
    "bench_workers_from_env",
    "format_cell",
    "format_table",
    "latency_summary",
    "load_perf_json",
    "load_sweep_json",
    "percentile",
    "print_table",
    "save_sweep_json",
    "sweep_records",
]
