"""Benchmark harness: sweeps, result tables, text reporting."""

from .harness import (
    ExperimentHarness,
    SweepResult,
    WORKERS_ENV,
    bench_workers_from_env,
    load_sweep_json,
    save_sweep_json,
    sweep_records,
)
from .reporting import format_cell, format_table, print_table
from .telemetry import PERF_SCHEMA, PerfCell, PerfLog, load_perf_json

__all__ = [
    "ExperimentHarness",
    "PERF_SCHEMA",
    "PerfCell",
    "PerfLog",
    "SweepResult",
    "WORKERS_ENV",
    "bench_workers_from_env",
    "format_cell",
    "format_table",
    "load_perf_json",
    "load_sweep_json",
    "print_table",
    "save_sweep_json",
    "sweep_records",
]
