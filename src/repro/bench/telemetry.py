"""Machine-readable performance telemetry (``BENCH_PR1.json`` et al.).

Benchmarks that want a perf trajectory future PRs can regress against
record per-cell host wall seconds, simulated seconds, and transfer-cache
counters into a :class:`PerfLog` and write one JSON document.  The
schema (see the README's "Benchmark telemetry" section):

```
{
  "schema": "repro-perf/10",
  "label": "<free-form document label, e.g. BENCH_PR4>",
  "cells": [
    {"schema": "repro-perf/10",
     "name": ..., "matrix": ..., "algorithm": ..., "k": ...,
     "n_nodes": ..., "grid": ...,
     "wall_seconds": ..., "simulated_seconds": ...,
     "cache_hits": ..., "cache_recomputes": ...,
     "arena_hits": ..., "arena_grows": ...,
     "plan_hits": ..., "plan_misses": ..., "plan_evictions": ...,
     "plan_invalidations": ..., "plan_stores": ...,
     "scatter_segmented": ..., "scatter_atomic": ...,
     "sync_csr_hits": ..., "sync_csr_builds": ...,
     "fault_rget_failures": ..., "fault_retries": ...,
     "fault_backoff_seconds": ..., "fault_lane_fallbacks": ...,
     "fault_rechunks": ..., "fault_rechunk_pieces": ...,
     "events_dropped": ...,
     "serve_requests": ..., "serve_completed": ...,
     "serve_rejected": ..., "serve_failed": ...,
     "serve_batches": ..., "serve_fusion_factor": ...,
     "serve_p50_latency": ..., "serve_p99_latency": ...,
     "serve_requests_per_sec": ..., "serve_peak_queue_depth": ...,
     "serve_deadline_misses": ...,
     "serve_availability": ..., "serve_replicas": ...,
     "serve_rejected_queue_full": ..., "serve_rejected_shed": ...,
     "serve_retries": ..., "serve_hedges": ...,
     "serve_hedge_wins": ..., "serve_hedge_wasted_seconds": ...,
     "serve_crashes": ..., "serve_timeouts": ...,
     "serve_shed": ..., "serve_degraded": ...,
     "serve_breaker_opens": ..., "serve_probes": ...,
     "comm_total_bytes": ..., "comm_row_bytes": ...,
     "comm_col_bytes": ..., "comm_fiber_bytes": ...,
     "tune_chosen": ..., "tune_predicted_seconds": ...,
     "tune_observed_seconds": ..., "tune_regret": ...,
     "tune_probed": ..., "tune_cache_hits": ...,
     "tune_cache_misses": ..., "tune_cache_invalidations": ...,
     "tune_recalibrations": ...,
     "transport": ...},
    ...
  ],
  "experiments": {"<name>": {...free-form...}, ...}
}
```

Simulated seconds are the paper-fidelity numbers and must not move when
host-side performance work lands; wall seconds are the quantity being
optimised.  Cache counters come from
:func:`repro.core.formats.transfer_cache_stats`; arena counters from
:func:`repro.cluster.buffers.arena_stats` (schema ``repro-perf/2``
added them — an all-hits, zero-grows cell means the fetch-buffer arena
served every stripe without allocating); plan-cache counters from
:func:`repro.core.plancache.plan_cache_stats` (schema ``repro-perf/3``
— a ``plan_hits > 0`` cell skipped classification entirely); scatter
and sync-CSR counters from :func:`repro.sparse.ops.scatter_stats`
(schema ``repro-perf/4`` — ``scatter_segmented``/``scatter_atomic``
record which kernel served each stripe scatter, and a cell with
``sync_csr_builds == 0`` reused memoised scipy handles throughout);
resilience counters from :func:`repro.cluster.faults.resilience_stats`
(schema ``repro-perf/5`` — the ``fault_*`` fields record how much
injected-fault recovery a cell needed: one-sided failures, retries and
the backoff seconds they cost, sync-lane fallbacks, and stripe
re-chunks under memory pressure; ``events_dropped`` counts comm events
lost to the per-run recording cap so a truncated event log is visible
rather than silent).

Schema ``repro-perf/6`` adds the serving layer (:mod:`repro.serve`):
every emitted cell record carries its own ``schema`` field so chaos
and serve logs are self-describing when records are compared across
documents, and the ``serve_*`` fields record one trace replay —
request/batch counts, the fusion factor (completed requests per fused
SpMM), p50/p99 simulated latency, simulated requests/sec, the peak
admission-queue depth, and deadline misses.  The shared percentile
helpers (:func:`percentile`, :func:`latency_summary`) are the one
aggregation path for serving latency and sweep summaries.

Schema ``repro-perf/7`` adds process grids (:mod:`repro.dist.grid`):
``grid`` is the layout cache token of the run (``"1d"``,
``"1.5d:r{p_r}c{c}"``, ``"2d:r{p_r}x{p_c}"``; empty when not
recorded), ``comm_total_bytes`` is the run's total simulated traffic,
and the ``comm_row_bytes``/``comm_col_bytes``/``comm_fiber_bytes``
counters split that traffic by grid dimension — row-communicator
volume (1D runs and the intra-layer lanes of 1.5D), column-communicator
volume (intra-layer lanes of 2D), and the depth-fiber allreduce that
sums partial ``C`` blocks.  These come from
``TrafficStats.dim_bytes``; dimensions a layout does not exercise stay
zero.

Schema ``repro-perf/8`` adds the autotuner (:mod:`repro.tune`): the
``tune_*`` fields record a tuned cell's decision — the chosen
``"Algorithm@layout"`` label, the model's predicted simulated seconds
next to the observed run, the regret against the best candidate the
document also measured (0.0 when the tuner picked the winner), whether
the top-2 probe ran, and the tuner's decision-cache and drift-feedback
counters (hits/misses/invalidations, recalibrations).  Untuned cells
leave the fields at their zero/empty defaults.

Schema ``repro-perf/9`` adds the pluggable transport layer
(:mod:`repro.transport`): ``transport`` names the data plane that
executed the cell (``"sim"``, ``"shm"``, ``"mpi"``; empty = the
default simulator, recorded before the field existed).  The meaning of
``wall_seconds`` depends on it — for ``sim`` cells it is host time
spent *running the simulator*, while for ``shm`` cells it is the
makespan of real OS processes doing the actual SpMM (the slowest
worker's barrier-to-barrier time), directly comparable across worker
counts.  ``simulated_seconds`` is ``None`` for non-sim transports:
real data planes measure time instead of modelling it (see
``docs/transports.md``).

Schema ``repro-perf/10`` adds the serving resilience tier
(:mod:`repro.serve.resilience`): ``serve_availability`` is the
completed fraction of submitted requests, ``serve_replicas`` the
replica count behind the balancer, and the remaining new counters
record how hard the tier worked — per-reason rejection splits
(``serve_rejected_queue_full`` / ``serve_rejected_shed``), dispatch
retries, hedged dispatches and their wins plus the duplicated seconds
charged to losers (``serve_hedge_wasted_seconds``), injected executor
crashes and per-attempt timeouts survived, SLO sheds and degraded
dispatches (stale-plan / half-K-panel), circuit-breaker opens, and
synthetic health probes run.  Single-executor serve cells leave them
at their zero defaults, so pre-PR documents compare field-for-field.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from ..cluster.buffers import arena_stats
from ..cluster.faults import resilience_stats
from ..core.formats import transfer_cache_stats
from ..core.plancache import plan_cache_stats
from ..sparse.ops import scatter_stats

PERF_SCHEMA = "repro-perf/10"


# ----------------------------------------------------------------------
# Shared percentile helpers (serving latency, sweep summaries)
# ----------------------------------------------------------------------
def percentile(values, q: float) -> float:
    """The ``q``-th percentile of ``values`` (linear interpolation).

    The single aggregation routine behind every latency/summary
    percentile in the repo (serving p50/p99, sweep summaries, matrix
    bandwidth stats) so documents stay comparable across PRs.  Returns
    NaN for an empty input — the table renderer shows it as missing.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100]: {q}")
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(np.percentile(arr, q))


def latency_summary(values) -> Dict[str, float]:
    """p50/p95/p99 of ``values`` as a dict (NaN entries when empty)."""
    return {
        "p50": percentile(values, 50.0),
        "p95": percentile(values, 95.0),
        "p99": percentile(values, 99.0),
    }


@dataclass
class PerfCell:
    """One measured (matrix, algorithm, K) cell."""

    name: str
    matrix: str
    algorithm: str
    k: int
    n_nodes: int
    wall_seconds: Optional[float]
    simulated_seconds: Optional[float]
    cache_hits: int = 0
    cache_recomputes: int = 0
    arena_hits: int = 0
    arena_grows: int = 0
    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    plan_invalidations: int = 0
    plan_stores: int = 0
    scatter_segmented: int = 0
    scatter_atomic: int = 0
    sync_csr_hits: int = 0
    sync_csr_builds: int = 0
    fault_rget_failures: int = 0
    fault_retries: int = 0
    fault_backoff_seconds: float = 0.0
    fault_lane_fallbacks: int = 0
    fault_rechunks: int = 0
    fault_rechunk_pieces: int = 0
    events_dropped: int = 0
    serve_requests: int = 0
    serve_completed: int = 0
    serve_rejected: int = 0
    serve_failed: int = 0
    serve_batches: int = 0
    serve_fusion_factor: float = 0.0
    serve_p50_latency: float = 0.0
    serve_p99_latency: float = 0.0
    serve_requests_per_sec: float = 0.0
    serve_peak_queue_depth: int = 0
    serve_deadline_misses: int = 0
    serve_availability: float = 0.0
    serve_replicas: int = 0
    serve_rejected_queue_full: int = 0
    serve_rejected_shed: int = 0
    serve_retries: int = 0
    serve_hedges: int = 0
    serve_hedge_wins: int = 0
    serve_hedge_wasted_seconds: float = 0.0
    serve_crashes: int = 0
    serve_timeouts: int = 0
    serve_shed: int = 0
    serve_degraded: int = 0
    serve_breaker_opens: int = 0
    serve_probes: int = 0
    grid: str = ""
    comm_total_bytes: int = 0
    comm_row_bytes: int = 0
    comm_col_bytes: int = 0
    comm_fiber_bytes: int = 0
    tune_chosen: str = ""
    tune_predicted_seconds: float = 0.0
    tune_observed_seconds: float = 0.0
    tune_regret: float = 0.0
    tune_probed: bool = False
    tune_cache_hits: int = 0
    tune_cache_misses: int = 0
    tune_cache_invalidations: int = 0
    tune_recalibrations: int = 0
    transport: str = ""


@dataclass
class PerfLog:
    """Accumulates perf cells and free-form experiment records."""

    label: str
    cells: List[PerfCell] = field(default_factory=list)
    experiments: Dict[str, Any] = field(default_factory=dict)

    def record_cell(
        self,
        name: str,
        matrix: str,
        algorithm: str,
        k: int,
        n_nodes: int,
        wall_seconds: Optional[float],
        simulated_seconds: Optional[float],
        cache_snapshot: Optional[tuple] = None,
        arena_snapshot: Optional[tuple] = None,
        plan_snapshot: Optional[tuple] = None,
        scatter_snapshot: Optional[tuple] = None,
        resilience_snapshot: Optional[tuple] = None,
        events_dropped: int = 0,
        traffic=None,
        grid: str = "",
        transport: str = "",
    ) -> PerfCell:
        """Append one cell record.

        Args:
            cache_snapshot: ``(hits, recomputes)`` taken *before* the
                cell ran; the deltas against the current global counters
                are stored.  Omit to record zeros.
            arena_snapshot: ``(hits, grows)`` from
                :meth:`~repro.cluster.buffers.ArenaStats.snapshot`
                taken before the cell ran; deltas are stored likewise.
            plan_snapshot: ``(hits, misses, evictions, invalidations,
                stores)`` from
                :meth:`~repro.core.plancache.PlanCacheStats.snapshot`
                taken before the cell ran; deltas are stored likewise.
            scatter_snapshot: ``(segmented_calls, atomic_calls,
                sync_csr_hits, sync_csr_builds)`` from
                :meth:`~repro.sparse.ops.ScatterStats.snapshot` taken
                before the cell ran; deltas are stored likewise.
            resilience_snapshot: ``(rget_failures, retries,
                backoff_seconds, lane_fallbacks, rechunked_stripes,
                rechunk_pieces)`` from
                :meth:`~repro.cluster.faults.ResilienceStats.snapshot`
                taken before the cell ran; deltas are stored likewise.
            events_dropped: comm events lost to the recording cap for
                this cell's run (``TrafficStats.events_dropped``).
            traffic: the run's ``TrafficStats``; fills
                ``comm_total_bytes`` and the per-grid-dimension
                ``comm_{row,col,fiber}_bytes`` counters from
                ``dim_bytes``.  Omit to record zeros.
            grid: the run's grid cache token (e.g. ``"2d:r16x16"``;
                empty = not recorded, 1D runs record ``"1d"``).
            transport: the data plane that executed the cell
                (``"sim"``, ``"shm"``, ``"mpi"``; empty = default
                simulator).  Changes what ``wall_seconds`` means — see
                the module docstring.
        """
        hits = recomputes = 0
        if cache_snapshot is not None:
            stats = transfer_cache_stats()
            hits = stats.hits - cache_snapshot[0]
            recomputes = stats.recomputes - cache_snapshot[1]
        a_hits = a_grows = 0
        if arena_snapshot is not None:
            arenas = arena_stats()
            a_hits = arenas.hits - arena_snapshot[0]
            a_grows = arenas.grows - arena_snapshot[1]
        plan_deltas = (0, 0, 0, 0, 0)
        if plan_snapshot is not None:
            plan_deltas = tuple(
                now - before
                for now, before in zip(
                    plan_cache_stats().snapshot(), plan_snapshot
                )
            )
        scatter_deltas = (0, 0, 0, 0)
        if scatter_snapshot is not None:
            scatter_deltas = tuple(
                now - before
                for now, before in zip(
                    scatter_stats().snapshot(), scatter_snapshot
                )
            )
        resil_deltas = (0, 0, 0.0, 0, 0, 0)
        if resilience_snapshot is not None:
            resil_deltas = tuple(
                now - before
                for now, before in zip(
                    resilience_stats().snapshot(), resilience_snapshot
                )
            )
        cell = PerfCell(
            name=name,
            matrix=matrix,
            algorithm=algorithm,
            k=k,
            n_nodes=n_nodes,
            wall_seconds=wall_seconds,
            simulated_seconds=simulated_seconds,
            cache_hits=hits,
            cache_recomputes=recomputes,
            arena_hits=a_hits,
            arena_grows=a_grows,
            plan_hits=plan_deltas[0],
            plan_misses=plan_deltas[1],
            plan_evictions=plan_deltas[2],
            plan_invalidations=plan_deltas[3],
            plan_stores=plan_deltas[4],
            scatter_segmented=scatter_deltas[0],
            scatter_atomic=scatter_deltas[1],
            sync_csr_hits=scatter_deltas[2],
            sync_csr_builds=scatter_deltas[3],
            fault_rget_failures=resil_deltas[0],
            fault_retries=resil_deltas[1],
            fault_backoff_seconds=resil_deltas[2],
            fault_lane_fallbacks=resil_deltas[3],
            fault_rechunks=resil_deltas[4],
            fault_rechunk_pieces=resil_deltas[5],
            events_dropped=events_dropped,
            grid=grid,
            comm_total_bytes=(
                int(traffic.total_bytes) if traffic is not None else 0
            ),
            comm_row_bytes=(
                int(traffic.dim_bytes.get("row", 0))
                if traffic is not None else 0
            ),
            comm_col_bytes=(
                int(traffic.dim_bytes.get("col", 0))
                if traffic is not None else 0
            ),
            comm_fiber_bytes=(
                int(traffic.dim_bytes.get("fiber", 0))
                if traffic is not None else 0
            ),
            transport=transport,
        )
        self.cells.append(cell)
        return cell

    def record_serve_cell(
        self,
        name: str,
        matrix: str,
        algorithm: str,
        k: int,
        n_nodes: int,
        serving: Dict[str, Any],
        wall_seconds: Optional[float] = None,
        simulated_seconds: Optional[float] = None,
    ) -> PerfCell:
        """Append one serving-replay cell.

        Args:
            serving: a summary dict as produced by
                ``repro.serve.ServeReport.serving_summary()`` — any of
                the ``serve_*`` field names (without the prefix) are
                picked up: ``requests``, ``completed``, ``rejected``,
                ``failed``, ``batches``, ``fusion_factor``,
                ``p50_latency``, ``p99_latency``, ``requests_per_sec``,
                ``peak_queue_depth``, ``deadline_misses``, and (from a
                :class:`~repro.serve.resilience.ResilienceReport`)
                ``availability``, ``replicas``,
                ``rejected_queue_full``, ``rejected_shed``,
                ``retries``, ``hedges``, ``hedge_wins``,
                ``hedge_wasted_seconds``, ``crashes``, ``timeouts``,
                ``shed``, ``degraded``, ``breaker_opens``, and
                ``probes``.  Unknown keys are ignored so the summary
                can carry extra detail for ``experiments`` records.
            simulated_seconds: defaults to the summary's ``makespan``.
        """
        if simulated_seconds is None:
            simulated_seconds = serving.get("makespan")
        cell = PerfCell(
            name=name,
            matrix=matrix,
            algorithm=algorithm,
            k=k,
            n_nodes=n_nodes,
            wall_seconds=wall_seconds,
            simulated_seconds=simulated_seconds,
            serve_requests=int(serving.get("requests", 0)),
            serve_completed=int(serving.get("completed", 0)),
            serve_rejected=int(serving.get("rejected", 0)),
            serve_failed=int(serving.get("failed", 0)),
            serve_batches=int(serving.get("batches", 0)),
            serve_fusion_factor=float(serving.get("fusion_factor", 0.0)),
            serve_p50_latency=float(serving.get("p50_latency", 0.0)),
            serve_p99_latency=float(serving.get("p99_latency", 0.0)),
            serve_requests_per_sec=float(
                serving.get("requests_per_sec", 0.0)
            ),
            serve_peak_queue_depth=int(
                serving.get("peak_queue_depth", 0)
            ),
            serve_deadline_misses=int(serving.get("deadline_misses", 0)),
            serve_availability=float(serving.get("availability", 0.0)),
            serve_replicas=int(serving.get("replicas", 0)),
            serve_rejected_queue_full=int(
                serving.get("rejected_queue_full", 0)
            ),
            serve_rejected_shed=int(serving.get("rejected_shed", 0)),
            serve_retries=int(serving.get("retries", 0)),
            serve_hedges=int(serving.get("hedges", 0)),
            serve_hedge_wins=int(serving.get("hedge_wins", 0)),
            serve_hedge_wasted_seconds=float(
                serving.get("hedge_wasted_seconds", 0.0)
            ),
            serve_crashes=int(serving.get("crashes", 0)),
            serve_timeouts=int(serving.get("timeouts", 0)),
            serve_shed=int(serving.get("shed", 0)),
            serve_degraded=int(serving.get("degraded", 0)),
            serve_breaker_opens=int(serving.get("breaker_opens", 0)),
            serve_probes=int(serving.get("probes", 0)),
        )
        self.cells.append(cell)
        return cell

    def record_tune_cell(
        self,
        name: str,
        matrix: str,
        k: int,
        n_nodes: int,
        chosen: str,
        predicted_seconds: float,
        observed_seconds: Optional[float] = None,
        regret: float = 0.0,
        probed: bool = False,
        tuner_stats: Optional[Dict[str, Any]] = None,
        grid: str = "",
        wall_seconds: Optional[float] = None,
    ) -> PerfCell:
        """Append one autotuner decision cell (schema ``repro-perf/8``).

        Args:
            chosen: the decision label, ``"Algorithm@layout"``.
            predicted_seconds: the model's simulated-seconds estimate
                for the chosen candidate.
            observed_seconds: the chosen candidate's measured simulated
                seconds, when the caller executed it; also stored as
                the cell's ``simulated_seconds``.
            regret: ``observed / best_observed - 1`` against the best
                candidate the caller also measured (0.0 = tuner picked
                the winner).
            probed: whether the top-2 probe decided this cell.
            tuner_stats: a :meth:`repro.tune.Tuner.stats` dict; fills
                the decision-cache and recalibration counters.
            grid: the chosen layout's cache token.
        """
        stats = tuner_stats or {}
        cache = stats.get("decision_cache", {})
        algorithm = chosen.split("@", 1)[0] if chosen else ""
        cell = PerfCell(
            name=name,
            matrix=matrix,
            algorithm=algorithm,
            k=k,
            n_nodes=n_nodes,
            wall_seconds=wall_seconds,
            simulated_seconds=observed_seconds,
            grid=grid,
            tune_chosen=chosen,
            tune_predicted_seconds=float(predicted_seconds),
            tune_observed_seconds=float(observed_seconds or 0.0),
            tune_regret=float(regret),
            tune_probed=bool(probed),
            tune_cache_hits=int(cache.get("hits", 0)),
            tune_cache_misses=int(cache.get("misses", 0)),
            tune_cache_invalidations=int(cache.get("invalidations", 0)),
            tune_recalibrations=int(stats.get("recalibrations", 0)),
        )
        self.cells.append(cell)
        return cell

    def record_experiment(self, name: str, payload: Dict[str, Any]) -> None:
        """Attach a free-form experiment record (e.g. a repeat bench)."""
        self.experiments[name] = payload

    def to_document(self) -> Dict[str, Any]:
        # Each cell record repeats the schema tag so a record copied
        # out of its document (chaos logs, serve logs, spreadsheets)
        # stays self-describing and comparable across PRs.
        return {
            "schema": PERF_SCHEMA,
            "label": self.label,
            "cells": [
                {"schema": PERF_SCHEMA, **asdict(cell)}
                for cell in self.cells
            ],
            "experiments": self.experiments,
        }

    def write(self, path) -> None:
        """Write the JSON document (sorted keys, ASCII) to ``path``."""
        with open(path, "w", encoding="ascii") as handle:
            json.dump(self.to_document(), handle, indent=2, sort_keys=True)
            handle.write("\n")


def load_perf_json(path) -> Dict[str, Any]:
    """Load a document written by :meth:`PerfLog.write`."""
    with open(path, "r", encoding="ascii") as handle:
        return json.load(handle)
