"""Reusable distributed SpMM engine for GNN training.

Full-graph GNN training performs hundreds of SpMM operations with the
same sparse matrix (paper §5.4).  :class:`DistSpMMEngine` preprocesses
once per dense width K, caches the Two-Face plan, and accumulates both
the simulated SpMM time and the (modelled) preprocessing time — the
quantities behind the paper's amortisation argument (§7.3).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..algorithms.base import DistSpMMAlgorithm
from ..algorithms.twoface import TwoFace
from ..cluster.buffers import arena_stats, warm_arenas
from ..cluster.machine import MachineConfig
from ..core.formats import transfer_cache_stats
from ..core.model import CostCoefficients
from ..core.plancache import AUTO, PlanCacheLike, plan_cache_stats
from ..errors import ReproError, ShapeError
from ..runtime.pool import get_exec_pool
from ..sparse.coo import COOMatrix
from ..sparse.ops import scatter_stats
from ..sparse.suite import stripe_width_for

#: Sentinel distinguishing "use the engine's cache" from an explicit
#: None (= disable persistent caching for this multiply).
_ENGINE_DEFAULT = object()


class DistSpMMEngine:
    """Runs repeated distributed SpMMs against one sparse matrix.

    Args:
        A: the sparse matrix (e.g. a normalised adjacency).
        machine: simulated machine configuration.
        stripe_width: Two-Face stripe width; dimension-scaled default.
        coeffs: preprocessing-model coefficients.
        algorithm_factory: optional ``f(plan_or_none) -> algorithm`` for
            running a baseline instead of Two-Face (plans are ignored by
            baselines); by default Two-Face with plan reuse.
        plan_cache: plan cache handed to Two-Face preprocessing; the
            default AUTO resolves the ``REPRO_PLAN_CACHE``-configured
            process-global cache, None disables persistent caching (the
            engine's own per-K plan reuse is unaffected).
        classify_k: pin stripe classification at this dense width for
            every multiply regardless of its actual K.  The serving
            layer uses this so a fused K-panel and each request's
            unbatched run accumulate ``C`` in the same order — the
            byte-identity guarantee of DESIGN.md §8.
        grid: optional process-grid layout every multiply runs under
            (``None``/``Grid1D`` keep the byte-identical 1D path).
            Layered grids re-plan per layer inside the run, so the
            engine's per-K plan reuse is bypassed — hand a persistent
            ``plan_cache`` to amortise layer planning instead (the
            serving scheduler's tuned groups do exactly that).
    """

    def __init__(
        self,
        A: COOMatrix,
        machine: MachineConfig,
        stripe_width: Optional[int] = None,
        coeffs: Optional[CostCoefficients] = None,
        algorithm_factory=None,
        plan_cache: PlanCacheLike = AUTO,
        classify_k: Optional[int] = None,
        grid=None,
    ):
        if grid is not None:
            grid.validate_nodes(machine.n_nodes)
        self.A = A
        self.machine = machine
        self.stripe_width = stripe_width or stripe_width_for(A.shape[0])
        self.coeffs = coeffs
        self._factory = algorithm_factory
        self.plan_cache = plan_cache
        self.classify_k = classify_k
        self.grid = grid
        self._plans: Dict[int, object] = {}
        self.spmm_seconds = 0.0
        self.preprocess_seconds = 0.0
        self.n_spmm = 0
        self.n_preprocess = 0
        self._cache_baseline = transfer_cache_stats().snapshot()
        self._arena_baseline = arena_stats().snapshot()
        self._plan_cache_baseline = plan_cache_stats().snapshot()
        self._scatter_baseline = scatter_stats().snapshot()

    # ------------------------------------------------------------------
    def multiply(
        self,
        B: np.ndarray,
        plan_cache: PlanCacheLike = _ENGINE_DEFAULT,
        machine: Optional[MachineConfig] = None,
    ) -> Tuple[np.ndarray, float]:
        """Compute ``A @ B`` on the simulated cluster.

        Args:
            B: dense input block, shape ``(A.shape[1], K)``.
            plan_cache: per-call plan-cache override — the serving
                layer passes the requesting tenant's
                :class:`~repro.core.plancache.PlanCacheNamespace` here
                so a cold plan build is attributed to that tenant.
                Defaults to the engine's own cache.  Only consulted
                when this K has no engine-cached plan yet.
            machine: per-call machine override.  The resilience tier
                threads a fresh fault ``crash_epoch`` per dispatch
                attempt this way; the override must keep the node
                count/shape of the engine's machine (plans are shaped
                by it).  None uses the engine's machine.

        Returns:
            ``(C, simulated_seconds)``; running totals are accumulated
            on the engine.

        Raises:
            ReproError: if the underlying run fails (e.g. OOM).
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.A.shape[1]:
            raise ShapeError(
                f"B shape {B.shape} incompatible with A {self.A.shape}"
            )
        k = B.shape[1]
        algorithm = self._algorithm_for(k, plan_cache)
        run_machine = machine if machine is not None else self.machine
        result = algorithm.run(self.A, B, run_machine, grid=self.grid)
        if result.failed:
            raise ReproError(f"distributed SpMM failed: {result.failure}")
        self._after_run(k, algorithm)
        self.spmm_seconds += result.seconds
        self.n_spmm += 1
        return result.C, result.seconds

    # ------------------------------------------------------------------
    def _algorithm_for(
        self, k: int, plan_cache: PlanCacheLike = _ENGINE_DEFAULT
    ) -> DistSpMMAlgorithm:
        if plan_cache is _ENGINE_DEFAULT:
            plan_cache = self.plan_cache
        if self._factory is not None:
            return self._factory(self._plans.get(k))
        # A precomputed 1D plan cannot be re-partitioned onto a layered
        # grid (the runner's layer clone would refuse it), so layered
        # engines plan through the plan cache on every multiply.
        layered = self.grid is not None and self.grid.depth > 1
        return TwoFace(
            stripe_width=self.stripe_width,
            coeffs=self.coeffs,
            plan=None if layered else self._plans.get(k),
            plan_cache=plan_cache,
            classify_k=self.classify_k,
        )

    def _after_run(self, k: int, algorithm: DistSpMMAlgorithm) -> None:
        """Cache the plan and record the one-time preprocessing cost."""
        if not isinstance(algorithm, TwoFace):
            return
        if self.grid is not None and self.grid.depth > 1:
            # last_plan is the final layer's sub-plan, not a 1D plan
            # for this K; reusing it would corrupt later multiplies.
            return
        if k not in self._plans and algorithm.last_plan is not None:
            self._plans[k] = algorithm.last_plan
            if algorithm.last_report is not None:
                self.preprocess_seconds += (
                    algorithm.last_report.modeled_seconds
                )
                self.n_preprocess += 1

    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Simulated SpMM time plus one-time preprocessing."""
        return self.spmm_seconds + self.preprocess_seconds

    def cache_stats(self) -> Dict[str, int]:
        """Transfer-schedule cache activity since engine construction.

        ``recomputes`` should stay 0 across a whole training run: the
        plan is finalised during preprocessing, so every epoch's SpMMs
        reuse the cached chunks / fetched-row ids / packing maps —
        the amortisation behaviour of paper §5.4/§7.3.
        """
        hits, recomputes = transfer_cache_stats().snapshot()
        plan_now = plan_cache_stats().snapshot()
        plan_base = self._plan_cache_baseline
        return {
            "hits": hits - self._cache_baseline[0],
            "recomputes": recomputes - self._cache_baseline[1],
            "plan_hits": plan_now[0] - plan_base[0],
            "plan_misses": plan_now[1] - plan_base[1],
            "plan_evictions": plan_now[2] - plan_base[2],
            "plan_invalidations": plan_now[3] - plan_base[3],
            "plan_stores": plan_now[4] - plan_base[4],
        }

    def warm_exec_buffers(self, k: int) -> None:
        """Pre-size every pool worker's fetch arena for width ``k``.

        Rank-to-worker assignment varies between epochs, so without
        this a worker can still grow its arena the first time it draws
        the largest stripe.  Call after the first ``multiply`` of a
        width (the plan must be cached) to pin steady-state epochs at
        zero per-stripe allocations deterministically.
        """
        plan = self._plans.get(k)
        if plan is None:
            raise ReproError(
                f"no cached plan for K={k}; run a multiply first"
            )
        from ..core.executor import arena_ceilings

        warm_arenas(get_exec_pool(), arena_ceilings(plan, k))

    def exec_stats(self) -> Dict[str, int]:
        """Worker-pool and fetch-arena activity since construction.

        The pool and the per-worker arenas are process-global, so they
        persist across epochs: after the first epoch warms the arenas,
        ``grows`` should stop increasing — every later SpMM reuses the
        same scratch buffers (zero per-stripe allocations).

        Scatter counters say which kernel served the async stripes
        (``scatter_segmented`` under the default ``REPRO_SCATTER``,
        ``scatter_atomic`` under the pinned reference path) and how the
        sync lane's memoised scipy handles behaved —
        ``sync_csr_builds`` should equal the number of distinct
        rank-local matrices, with every later epoch a ``sync_csr_hit``.
        """
        pool = get_exec_pool()
        hits, grows = arena_stats().snapshot()
        scatter = scatter_stats().snapshot()
        base = self._scatter_baseline
        return {
            "workers": pool.workers,
            "arena_hits": hits - self._arena_baseline[0],
            "arena_grows": grows - self._arena_baseline[1],
            "scatter_segmented": scatter[0] - base[0],
            "scatter_atomic": scatter[1] - base[1],
            "sync_csr_hits": scatter[2] - base[2],
            "sync_csr_builds": scatter[3] - base[3],
        }
