"""Synthetic graph datasets for full-graph GNN training.

The paper motivates Two-Face with full-graph GNN training (§5.4), where
the same (normalised) adjacency matrix is reused for hundreds of SpMM
operations.  This module generates planted-partition graphs with node
features and labels, so the GCN in :mod:`repro.gnn.model` has something
learnable to train on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..errors import ConfigurationError
from ..sparse.coo import COOMatrix


@dataclass
class GraphDataset:
    """A node-classification dataset.

    Attributes:
        adjacency: the (unnormalised) adjacency matrix with self-loops
            excluded; square, unweighted.
        features: node features, shape ``(n, d)``.
        labels: class id per node, shape ``(n,)``.
        train_mask: boolean mask of labelled training nodes.
        n_classes: number of classes.
    """

    adjacency: COOMatrix
    features: np.ndarray
    labels: np.ndarray
    train_mask: np.ndarray
    n_classes: int

    @property
    def n_nodes(self) -> int:
        return self.adjacency.shape[0]

    @property
    def feature_dim(self) -> int:
        return int(self.features.shape[1])


def planted_partition(
    n: int,
    n_classes: int = 4,
    avg_degree: float = 8.0,
    intra_fraction: float = 0.8,
    feature_dim: int = 32,
    train_fraction: float = 0.3,
    noise: float = 0.6,
    seed: Optional[int] = 0,
) -> GraphDataset:
    """Generate a planted-partition graph with class-correlated features.

    Nodes are split into ``n_classes`` communities; ``intra_fraction`` of
    edges stay inside a community.  Features are a noisy class embedding,
    so a 2-layer GCN can reach high accuracy — enough structure to make
    the training loop a meaningful workload.

    Args:
        n: nodes.
        n_classes: communities / label classes.
        avg_degree: edges per node (each direction counted once).
        intra_fraction: probability an edge stays intra-community.
        feature_dim: node feature width.
        train_fraction: fraction of nodes labelled for training.
        noise: feature noise standard deviation.
        seed: RNG seed.

    Returns:
        The dataset.
    """
    if n_classes < 2:
        raise ConfigurationError(f"need at least 2 classes: {n_classes}")
    if not 0 < train_fraction <= 1:
        raise ConfigurationError(
            f"train_fraction must be in (0, 1]: {train_fraction}"
        )
    rng = np.random.default_rng(seed)
    # Communities are contiguous in vertex id, as produced by the graph
    # partitioners real GNN pipelines run first; this gives the adjacency
    # the diagonal-block locality Two-Face exploits.
    labels = np.sort(rng.integers(0, n_classes, size=n))

    n_edges = int(round(n * avg_degree))
    src = rng.integers(0, n, size=n_edges)
    intra = rng.random(n_edges) < intra_fraction
    dst = np.empty(n_edges, dtype=np.int64)
    # Intra-community edges: pick a random node of the same class.
    class_members = [np.flatnonzero(labels == c) for c in range(n_classes)]
    for c in range(n_classes):
        members = class_members[c]
        pick = intra & (labels[src] == c)
        if len(members) and pick.any():
            dst[pick] = members[rng.integers(0, len(members), int(pick.sum()))]
    inter = ~intra | (dst < 0)
    dst[inter] = rng.integers(0, n, size=int(inter.sum()))

    # Symmetrise and drop self loops.
    rows = np.concatenate([src, dst])
    cols = np.concatenate([dst, src])
    keep = rows != cols
    rows, cols = rows[keep], cols[keep]
    keys = np.unique(rows * n + cols)
    rows, cols = keys // n, keys % n
    adjacency = COOMatrix(
        rows, cols, np.ones(len(rows)), (n, n)
    )

    centers = rng.standard_normal((n_classes, feature_dim))
    features = centers[labels] + noise * rng.standard_normal((n, feature_dim))
    train_mask = rng.random(n) < train_fraction
    if not train_mask.any():
        train_mask[0] = True
    return GraphDataset(
        adjacency=adjacency,
        features=features,
        labels=labels,
        train_mask=train_mask,
        n_classes=n_classes,
    )


def gcn_normalize(adjacency: COOMatrix) -> COOMatrix:
    """Symmetric GCN normalisation: ``D^-1/2 (A + I) D^-1/2``.

    The result is symmetric, so forward and backward propagation use the
    same matrix — and therefore the same Two-Face plan.
    """
    n = adjacency.shape[0]
    if adjacency.shape[0] != adjacency.shape[1]:
        raise ConfigurationError(
            f"adjacency must be square, got {adjacency.shape}"
        )
    diag = np.arange(n, dtype=np.int64)
    rows = np.concatenate([adjacency.rows, diag])
    cols = np.concatenate([adjacency.cols, diag])
    vals = np.concatenate([adjacency.vals, np.ones(n)])
    with_loops = COOMatrix(rows, cols, vals, (n, n)).sum_duplicates()
    degrees = np.zeros(n)
    np.add.at(degrees, with_loops.rows, with_loops.vals)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
    vals = (
        with_loops.vals
        * inv_sqrt[with_loops.rows]
        * inv_sqrt[with_loops.cols]
    )
    return COOMatrix(with_loops.rows, with_loops.cols, vals, (n, n))
