"""A full-graph GCN whose aggregations run as distributed SpMM.

The two-layer graph convolutional network of Kipf & Welling, trained
full-graph (no sampling or mini-batching, per the paper's §5.4): every
forward and backward aggregation is one distributed SpMM through a
:class:`~repro.gnn.engine.DistSpMMEngine`, so training both exercises
the library end-to-end and accumulates the simulated communication time
the paper's amortisation analysis needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigurationError
from .engine import DistSpMMEngine


def relu(x: np.ndarray) -> np.ndarray:
    """Elementwise rectified linear unit."""
    return np.maximum(x, 0.0)


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, max-shifted for numerical stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy(probs: np.ndarray, labels: np.ndarray, mask: np.ndarray) -> float:
    """Mean cross-entropy over masked nodes."""
    picked = probs[mask, labels[mask]]
    return float(-np.mean(np.log(np.maximum(picked, 1e-12))))


@dataclass
class GCNLayer:
    """One graph convolution: ``H' = act(Ahat @ (H W) + b)``."""

    weight: np.ndarray
    bias: np.ndarray
    activation: bool = True
    # Saved tensors for backward.
    _inputs: Optional[np.ndarray] = field(default=None, repr=False)
    _pre_activation: Optional[np.ndarray] = field(default=None, repr=False)

    @classmethod
    def init(
        cls, in_dim: int, out_dim: int, rng: np.random.Generator,
        activation: bool = True,
    ) -> "GCNLayer":
        scale = np.sqrt(2.0 / (in_dim + out_dim))
        return cls(
            weight=scale * rng.standard_normal((in_dim, out_dim)),
            bias=np.zeros(out_dim),
            activation=activation,
        )

    def forward(self, engine: DistSpMMEngine, H: np.ndarray) -> np.ndarray:
        self._inputs = H
        XW = H @ self.weight
        aggregated, _ = engine.multiply(XW)
        self._pre_activation = aggregated + self.bias
        return relu(self._pre_activation) if self.activation else (
            self._pre_activation
        )

    def backward(
        self, engine: DistSpMMEngine, grad_out: np.ndarray, lr: float
    ) -> np.ndarray:
        """SGD step; returns the gradient w.r.t. the layer input.

        Uses the symmetry of the normalised adjacency: the backward
        aggregation ``Ahat^T @ g`` equals ``Ahat @ g``, so the same
        Two-Face plan serves both directions.
        """
        if self._inputs is None or self._pre_activation is None:
            raise ConfigurationError("backward called before forward")
        if self.activation:
            grad_out = grad_out * (self._pre_activation > 0)
        # d/d(XW): Ahat^T @ grad_out == Ahat @ grad_out (symmetric Ahat).
        grad_xw, _ = engine.multiply(grad_out)
        grad_weight = self._inputs.T @ grad_xw
        grad_bias = grad_out.sum(axis=0)
        grad_input = grad_xw @ self.weight.T
        self.weight -= lr * grad_weight
        self.bias -= lr * grad_bias
        return grad_input


class GCN:
    """A multi-layer GCN for semi-supervised node classification.

    Args:
        layer_dims: e.g. ``[in_dim, hidden, n_classes]``.
        seed: weight-init RNG seed.
    """

    def __init__(self, layer_dims: List[int], seed: int = 0):
        if len(layer_dims) < 2:
            raise ConfigurationError("need at least input and output dims")
        rng = np.random.default_rng(seed)
        self.layers = [
            GCNLayer.init(
                layer_dims[i], layer_dims[i + 1], rng,
                activation=(i < len(layer_dims) - 2),
            )
            for i in range(len(layer_dims) - 1)
        ]

    @property
    def spmm_per_epoch(self) -> int:
        """Distributed SpMMs per training epoch (forward + backward)."""
        return 2 * len(self.layers)

    def forward(self, engine: DistSpMMEngine, X: np.ndarray) -> np.ndarray:
        H = X
        for layer in self.layers:
            H = layer.forward(engine, H)
        return H

    def train_step(
        self,
        engine: DistSpMMEngine,
        X: np.ndarray,
        labels: np.ndarray,
        mask: np.ndarray,
        lr: float,
    ) -> float:
        """One full-graph epoch: forward, loss, backward. Returns loss."""
        logits = self.forward(engine, X)
        probs = softmax(logits)
        loss = cross_entropy(probs, labels, mask)
        grad = probs.copy()
        grad[np.arange(len(labels)), labels] -= 1.0
        grad[~mask] = 0.0
        grad /= max(1, int(mask.sum()))
        for layer in reversed(self.layers):
            grad = layer.backward(engine, grad, lr)
        return loss

    def predict(self, engine: DistSpMMEngine, X: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward(engine, X), axis=1)
