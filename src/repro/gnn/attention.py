"""Sparse attention (GAT-style) on shared Two-Face plans.

Graph attention computes, per edge ``(i, j)``, a score from the
endpoint features, normalises scores row-wise, and aggregates neighbour
features with the normalised weights.  On a distributed 1D layout that
is exactly one **SDDMM** (scores = ``A (*) (Q @ K^T)``) followed by one
**SpMM** (aggregation) — and because both kernels share Two-Face's
communication structure, a single preprocessed plan drives the pair.
This module implements that layer as a working demonstration of the
paper's §9 claim at the application level.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..algorithms.sddmm import TwoFaceSDDMM
from ..algorithms.twoface import TwoFace
from ..cluster.machine import MachineConfig
from ..core.model import CostCoefficients
from ..core.plan import TwoFacePlan
from ..errors import ReproError, ShapeError
from ..sparse.coo import COOMatrix
from ..sparse.suite import stripe_width_for


def sparse_row_softmax(scores: COOMatrix) -> COOMatrix:
    """Row-wise softmax over a sparse score matrix.

    Entries of each row are exponentiated (max-shifted for stability)
    and normalised to sum to one; empty rows stay empty.
    """
    if scores.nnz == 0:
        return scores
    n = scores.shape[0]
    row_max = np.full(n, -np.inf)
    np.maximum.at(row_max, scores.rows, scores.vals)
    shifted = np.exp(scores.vals - row_max[scores.rows])
    row_sum = np.zeros(n)
    np.add.at(row_sum, scores.rows, shifted)
    normalised = shifted / row_sum[scores.rows]
    return COOMatrix(
        scores.rows, scores.cols, normalised, scores.shape,
        _validated=True,
    )


class DistAttentionLayer:
    """One distributed sparse-attention layer.

    ``H' = softmax_rows(A (*) (H Wq)(H Wk)^T) @ (H Wv)``

    Args:
        adjacency: square sparse connectivity (values scale scores).
        machine: simulated machine.
        dim: feature width of queries/keys/values (the SpMM/SDDMM K).
        stripe_width / coeffs: Two-Face knobs.
        seed: weight-init seed.
    """

    def __init__(
        self,
        adjacency: COOMatrix,
        machine: MachineConfig,
        dim: int,
        stripe_width: Optional[int] = None,
        coeffs: Optional[CostCoefficients] = None,
        seed: int = 0,
    ):
        if adjacency.shape[0] != adjacency.shape[1]:
            raise ShapeError(
                f"attention needs a square adjacency, got {adjacency.shape}"
            )
        self.adjacency = adjacency.sum_duplicates()
        self.machine = machine
        self.dim = dim
        self.coeffs = coeffs
        width = stripe_width or stripe_width_for(adjacency.shape[0])
        rng = np.random.default_rng(seed)
        scale = 1.0 / np.sqrt(dim)
        self.w_query = scale * rng.standard_normal((dim, dim))
        self.w_key = scale * rng.standard_normal((dim, dim))
        self.w_value = scale * rng.standard_normal((dim, dim))

        # One plan for both kernels: bootstrap it with a probe SpMM.
        bootstrap = TwoFace(stripe_width=width, coeffs=coeffs)
        probe = rng.standard_normal((adjacency.shape[1], dim))
        result = bootstrap.run(self.adjacency, probe, machine)
        if result.failed:
            raise ReproError(f"plan bootstrap failed: {result.failure}")
        self.plan: TwoFacePlan = bootstrap.last_plan
        self.simulated_seconds = 0.0

    # ------------------------------------------------------------------
    def forward(
        self, features: np.ndarray
    ) -> Tuple[np.ndarray, COOMatrix]:
        """Apply the layer.

        Args:
            features: node features ``H``, shape ``(n, dim)``.

        Returns:
            ``(H', attention)`` — new features and the normalised sparse
            attention matrix.
        """
        features = np.asarray(features, dtype=np.float64)
        if features.shape != (self.adjacency.shape[0], self.dim):
            raise ShapeError(
                f"features must be {(self.adjacency.shape[0], self.dim)}, "
                f"got {features.shape}"
            )
        queries = features @ self.w_query
        keys = features @ self.w_key
        values = features @ self.w_value

        # SDDMM: one score per edge, on the shared plan.
        sddmm = TwoFaceSDDMM(plan=self.plan, coeffs=self.coeffs)
        score_result = sddmm.run(
            self.adjacency, queries, keys, self.machine
        )
        if score_result.failed:
            raise ReproError(
                f"attention SDDMM failed: {score_result.failure}"
            )
        self.simulated_seconds += score_result.seconds
        attention = sparse_row_softmax(score_result.S)

        # SpMM: aggregate values with attention weights.  The attention
        # matrix has the adjacency's pattern, so the same plan holds,
        # with the plan's stored values remapped per iteration (the
        # §5.4 trick of masks, generalised to value updates).
        spmm = TwoFace(
            plan=_plan_with_values(self.plan, attention),
            coeffs=self.coeffs,
        )
        agg_result = spmm.run(attention, values, self.machine)
        if agg_result.failed:
            raise ReproError(
                f"attention SpMM failed: {agg_result.failure}"
            )
        self.simulated_seconds += agg_result.seconds
        return agg_result.C, attention


def _plan_with_values(plan: TwoFacePlan, matrix: COOMatrix) -> TwoFacePlan:
    """Clone a plan with its stored values replaced by ``matrix``'s.

    The pattern must match the plan's (same coordinates); only values
    differ — the attention case, where normalised scores change every
    forward pass but the structure never does.
    """
    import copy

    n_cols = matrix.shape[1]
    lookup_keys = matrix.rows * n_cols + matrix.cols
    order = np.argsort(lookup_keys, kind="stable")
    sorted_keys = lookup_keys[order]
    sorted_vals = matrix.vals[order]

    new_plan = copy.copy(plan)
    new_ranks = []
    for rank_plan in plan.ranks:
        row_lo, _ = _rank_row_bounds(plan, rank_plan.rank)
        new_rank = copy.copy(rank_plan)
        sync = rank_plan.sync_local
        new_sync = copy.copy(sync)
        new_csr = copy.copy(sync.csr)
        coo = sync.csr.to_coo()
        keys = (coo.rows + row_lo) * n_cols + coo.cols
        new_csr.data = _lookup(sorted_keys, sorted_vals, keys)
        new_sync.csr = new_csr
        new_rank.sync_local = new_sync

        new_async = copy.copy(rank_plan.async_matrix)
        new_stripes = []
        for stripe in rank_plan.async_matrix.stripes:
            new_stripe = copy.copy(stripe)
            nz = stripe.nonzeros
            keys = (nz.rows + row_lo) * n_cols + nz.cols
            new_stripe.nonzeros = COOMatrix(
                nz.rows, nz.cols,
                _lookup(sorted_keys, sorted_vals, keys),
                nz.shape, _validated=True,
            )
            new_stripes.append(new_stripe)
        new_async.stripes = new_stripes
        new_rank.async_matrix = new_async
        new_ranks.append(new_rank)
    new_plan.ranks = new_ranks
    return new_plan


def _rank_row_bounds(plan: TwoFacePlan, rank: int):
    return plan.geometry.row_partition.bounds(rank)


def _lookup(
    sorted_keys: np.ndarray, sorted_vals: np.ndarray, keys: np.ndarray
) -> np.ndarray:
    pos = np.searchsorted(sorted_keys, keys)
    if len(keys) and (
        pos.max(initial=0) >= len(sorted_keys)
        or np.any(sorted_keys[np.minimum(pos, len(sorted_keys) - 1)] != keys)
    ):
        raise ShapeError(
            "matrix pattern does not match the plan's stored nonzeros"
        )
    return sorted_vals[pos]
