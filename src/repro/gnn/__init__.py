"""Full-graph GNN training on distributed SpMM (paper §5.4, §7.3)."""

from .attention import DistAttentionLayer, sparse_row_softmax
from .data import GraphDataset, gcn_normalize, planted_partition
from .engine import DistSpMMEngine
from .model import GCN, GCNLayer, cross_entropy, relu, softmax
from .sampling import SampledSpMMEngine
from .train import TrainReport, train_gcn

__all__ = [
    "DistAttentionLayer",
    "DistSpMMEngine",
    "GCN",
    "GCNLayer",
    "GraphDataset",
    "SampledSpMMEngine",
    "TrainReport",
    "cross_entropy",
    "gcn_normalize",
    "planted_partition",
    "relu",
    "softmax",
    "sparse_row_softmax",
    "train_gcn",
]
