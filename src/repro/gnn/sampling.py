"""Sampled full-graph GNN training support (paper §5.4's sketch).

The paper notes Two-Face is incompatible with sampling *as is*, because
each iteration uses a different reduced matrix and reclassification
would be needed every time — then sketches the fix implemented here:
classify once, offline, on the full matrix (a proxy for the expected
stripe densities), keep the Fig. 6 storage, and apply a per-iteration
mask that filters the nonzeros sampling eliminated.  Communication is
unchanged (conservative); compute and results cover only survivors.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..algorithms.twoface import TwoFace
from ..cluster.machine import MachineConfig
from ..core.model import CostCoefficients
from ..core.sampling_mask import SampleMask, bernoulli_mask
from ..errors import ConfigurationError, ReproError, ShapeError
from ..sparse.coo import COOMatrix
from ..sparse.suite import stripe_width_for


class SampledSpMMEngine:
    """Repeated SpMMs against per-iteration edge samples of one matrix.

    Args:
        A: the full sparse matrix (e.g. normalised adjacency).
        machine: simulated machine.
        keep_probability: Bernoulli edge-survival probability per
            iteration.
        k: dense width the one-time plan is built for.
        stripe_width / coeffs: Two-Face knobs.
        seed: base seed; iteration ``i`` samples with ``seed + i``.
    """

    def __init__(
        self,
        A: COOMatrix,
        machine: MachineConfig,
        keep_probability: float,
        k: int,
        stripe_width: Optional[int] = None,
        coeffs: Optional[CostCoefficients] = None,
        seed: int = 0,
    ):
        if not 0.0 < keep_probability <= 1.0:
            raise ConfigurationError(
                f"keep_probability must be in (0, 1]: {keep_probability}"
            )
        self.A = A
        self.machine = machine
        self.keep_probability = keep_probability
        self.k = k
        self.seed = seed
        self.iteration = 0
        self.spmm_seconds = 0.0

        # One-time, offline classification on the full matrix.
        bootstrap = TwoFace(
            stripe_width=stripe_width or stripe_width_for(A.shape[0]),
            coeffs=coeffs,
        )
        rng = np.random.default_rng(seed)
        probe = rng.standard_normal((A.shape[1], k))
        result = bootstrap.run(A, probe, machine)
        if result.failed:
            raise ReproError(
                f"plan bootstrap failed: {result.failure}"
            )
        self.plan = bootstrap.last_plan
        self.preprocess_seconds = (
            bootstrap.last_report.modeled_seconds
            if bootstrap.last_report
            else 0.0
        )

    # ------------------------------------------------------------------
    def next_mask(self) -> SampleMask:
        """Draw the next iteration's edge sample."""
        mask = bernoulli_mask(
            self.plan, self.keep_probability, seed=self.seed + self.iteration
        )
        self.iteration += 1
        return mask

    def multiply(
        self, B: np.ndarray, mask: Optional[SampleMask] = None
    ) -> Tuple[np.ndarray, SampleMask, float]:
        """One sampled SpMM: ``(A (*) mask) @ B``.

        Args:
            B: dense input of width ``k``.
            mask: reuse an existing sample (e.g. the same sample for the
                forward and backward pass of one iteration); a fresh one
                is drawn when omitted.

        Returns:
            ``(C, mask, simulated_seconds)``.
        """
        B = np.asarray(B, dtype=np.float64)
        if B.ndim != 2 or B.shape[0] != self.A.shape[1]:
            raise ShapeError(
                f"B shape {B.shape} incompatible with A {self.A.shape}"
            )
        if B.shape[1] != self.k:
            raise ShapeError(
                f"engine plan is for K={self.k}, got K={B.shape[1]}"
            )
        if mask is None:
            mask = self.next_mask()
        result = TwoFace(plan=self.plan, mask=mask).run(
            self.A, B, self.machine
        )
        if result.failed:
            raise ReproError(f"sampled SpMM failed: {result.failure}")
        self.spmm_seconds += result.seconds
        return result.C, mask, result.seconds
