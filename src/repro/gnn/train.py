"""Full-graph GCN training loop with amortisation accounting (§7.3).

Trains a GCN with Two-Face as the SpMM backend, and optionally a
baseline backend for comparison, reporting when Two-Face's one-time
preprocessing cost is amortised — the paper finds an average of ~15 SpMM
operations at K=128, far below one training run's SpMM count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..cluster.machine import MachineConfig
from ..core.model import CostCoefficients
from ..errors import ConfigurationError
from .data import GraphDataset, gcn_normalize
from .engine import DistSpMMEngine
from .model import GCN


@dataclass
class TrainReport:
    """Outcome of one training run.

    Attributes:
        losses: per-epoch training loss.
        train_accuracy: accuracy on the labelled nodes after training.
        spmm_ops: distributed SpMM operations performed.
        spmm_seconds: total simulated SpMM time.
        preprocess_seconds: one-time Two-Face preprocessing time
            (modelled, no I/O), 0 for baseline backends.
        baseline_spmm_seconds: simulated SpMM time of the comparison
            backend over the same schedule (None if not requested).
        amortization_ops: SpMM count after which Two-Face's cumulative
            time (preprocessing included) undercuts the baseline's;
            None when never or when no baseline was run.
        plan_cache_hits / plan_cache_misses: plan-cache activity over
            the run (both 0 when no cache is configured); a warm cache
            turns every per-K preprocessing into a hit.
    """

    losses: List[float] = field(default_factory=list)
    train_accuracy: float = 0.0
    spmm_ops: int = 0
    spmm_seconds: float = 0.0
    preprocess_seconds: float = 0.0
    baseline_spmm_seconds: Optional[float] = None
    amortization_ops: Optional[int] = None
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0


def train_gcn(
    dataset: GraphDataset,
    machine: MachineConfig,
    hidden_dim: int = 64,
    epochs: int = 20,
    lr: float = 0.5,
    coeffs: Optional[CostCoefficients] = None,
    baseline_factory: Optional[Callable] = None,
    seed: int = 0,
    plan_cache="auto",
) -> TrainReport:
    """Train a 2-layer GCN full-graph on the simulated cluster.

    Args:
        dataset: graph + features + labels.
        machine: simulated machine.
        hidden_dim: hidden layer width.
        epochs: full-graph epochs.
        lr: SGD learning rate.
        coeffs: Two-Face model coefficients.
        baseline_factory: optional ``f() -> DistSpMMAlgorithm`` run once
            per distinct K to price the baseline per-SpMM cost.
        seed: weight-init seed.
        plan_cache: plan cache forwarded to the engine ("auto" = the
            ``REPRO_PLAN_CACHE``-configured global cache, None = off,
            or an explicit :class:`~repro.core.plancache.PlanCache`).

    Returns:
        The training report.
    """
    if epochs <= 0:
        raise ConfigurationError(f"epochs must be positive: {epochs}")
    ahat = gcn_normalize(dataset.adjacency)
    engine = DistSpMMEngine(ahat, machine, coeffs=coeffs, plan_cache=plan_cache)
    model = GCN(
        [dataset.feature_dim, hidden_dim, dataset.n_classes], seed=seed
    )

    report = TrainReport()
    for _ in range(epochs):
        loss = model.train_step(
            engine, dataset.features, dataset.labels, dataset.train_mask, lr
        )
        report.losses.append(loss)

    predictions = model.predict(engine, dataset.features)
    mask = dataset.train_mask
    report.train_accuracy = float(
        np.mean(predictions[mask] == dataset.labels[mask])
    )
    report.spmm_ops = engine.n_spmm
    report.spmm_seconds = engine.spmm_seconds
    report.preprocess_seconds = engine.preprocess_seconds
    engine_caches = engine.cache_stats()
    report.plan_cache_hits = engine_caches["plan_hits"]
    report.plan_cache_misses = engine_caches["plan_misses"]

    if baseline_factory is not None:
        report.baseline_spmm_seconds = _baseline_schedule_seconds(
            ahat, machine, engine, baseline_factory
        )
        report.amortization_ops = _amortization_point(
            twoface_per_op=report.spmm_seconds / max(1, report.spmm_ops),
            preprocess=report.preprocess_seconds,
            baseline_per_op=(
                report.baseline_spmm_seconds / max(1, report.spmm_ops)
            ),
        )
    return report


def _baseline_schedule_seconds(
    ahat, machine, engine: DistSpMMEngine, baseline_factory
) -> float:
    """Price the same SpMM schedule with a baseline algorithm.

    One baseline run per distinct K is enough: simulated time is
    deterministic in (matrix, K, machine).
    """
    per_k_seconds = {}
    rng = np.random.default_rng(0)
    total = 0.0
    for k, count in _schedule_counts(engine).items():
        if k not in per_k_seconds:
            B = rng.standard_normal((ahat.shape[1], k))
            result = baseline_factory().run(ahat, B, machine)
            if result.failed:
                raise ConfigurationError(
                    f"baseline failed at K={k}: {result.failure}"
                )
            per_k_seconds[k] = result.seconds
        total += per_k_seconds[k] * count
    return total


def _schedule_counts(engine: DistSpMMEngine) -> dict:
    """SpMM counts by K (engine caches one plan per distinct K)."""
    # The engine does not record per-op K, but GCN training alternates
    # over the same K set every epoch; distribute evenly over the plans.
    ks = list(engine._plans.keys())
    if not ks:
        return {}
    per = engine.n_spmm // len(ks)
    rem = engine.n_spmm - per * len(ks)
    counts = {k: per for k in ks}
    counts[ks[0]] += rem
    return counts


def _amortization_point(
    twoface_per_op: float, preprocess: float, baseline_per_op: float
) -> Optional[int]:
    """Ops needed before TwoFace (with preprocessing) beats the baseline."""
    saving = baseline_per_op - twoface_per_op
    if saving <= 0:
        return None
    return int(np.ceil(preprocess / saving))
