"""Exception hierarchy for the Two-Face reproduction.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class at API boundaries.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ShapeError(ReproError, ValueError):
    """An operand's shape is incompatible with the requested operation."""


class FormatError(ReproError, ValueError):
    """A sparse-matrix payload violates its format invariants."""


class PartitionError(ReproError, ValueError):
    """A distributed partition is malformed or incompatible."""


class OutOfMemoryError(ReproError, MemoryError):
    """A simulated node exceeded its memory capacity.

    This reproduces the paper's missing data points: AllGather on *kmer* at
    K=128 and the high-replication dense-shifting runs (DS4/DS8) at large K
    exceed single-node capacity on Delta and therefore report no result.
    """

    def __init__(self, node: int, needed_bytes: int, capacity_bytes: int):
        self.node = node
        self.needed_bytes = needed_bytes
        self.capacity_bytes = capacity_bytes
        super().__init__(
            f"simulated node {node} needs {needed_bytes} B "
            f"but has capacity {capacity_bytes} B"
        )


class CommunicationError(ReproError, RuntimeError):
    """The simulated communication layer was used incorrectly."""


class CalibrationError(ReproError, RuntimeError):
    """Cost-model calibration failed (e.g. singular regression system)."""


class ConfigurationError(ReproError, ValueError):
    """An algorithm or machine configuration is invalid."""


class ExecutorCrashError(ReproError, RuntimeError):
    """An injected ``executor_crash`` fault killed a simulated executor
    mid-batch.

    The whole in-flight request group is lost; the serving resilience
    tier (:mod:`repro.serve.resilience`) catches this and retries the
    group on another replica.  Deterministic: whether a given dispatch
    crashes is a pure function of the fault seed and the dispatch's
    ``crash_epoch`` (see :class:`repro.cluster.faults.FaultConfig`).
    """

    def __init__(self, rank: int, epoch: int):
        self.rank = rank
        self.epoch = epoch
        super().__init__(
            f"injected executor crash on rank {rank} (crash epoch {epoch})"
        )
