"""Two-Face: collective + one-sided communication for distributed SpMM.

A complete Python reproduction of *Two-Face: Combining Collective and
One-Sided Communication for Efficient Distributed SpMM* (ASPLOS 2024).
The physical supercomputer is replaced by a simulated cluster with
calibrated network/compute cost models; the algorithms, data structures,
preprocessing model, and evaluation harness follow the paper.

Quickstart::

    import numpy as np
    from repro import MachineConfig, TwoFace, suite

    A = suite.load("web", size="small")
    B = np.random.default_rng(0).standard_normal((A.shape[1], 128))
    result = TwoFace().run(A, B, MachineConfig(n_nodes=32))
    print(result.seconds, result.breakdown.makespan)
"""

from . import algorithms, cluster, core, dist, runtime, sparse
from .algorithms import (
    AllGather,
    AsyncCoarse,
    AsyncFine,
    DenseShifting,
    DistSpMMAlgorithm,
    SpMMResult,
    TwoFace,
    make_algorithm,
)
from .cluster import (
    Cluster,
    ComputeModel,
    FaultConfig,
    MachineConfig,
    NetworkModel,
    ResilienceStats,
    SimMPI,
    resilience_stats,
)
from .core import (
    CostCoefficients,
    StripeGeometry,
    TwoFacePlan,
    preprocess,
)
from .dist import DistDenseMatrix, DistSparseMatrix, RowPartition
from .errors import (
    CalibrationError,
    CommunicationError,
    ConfigurationError,
    FormatError,
    OutOfMemoryError,
    PartitionError,
    ReproError,
    ShapeError,
)
from .runtime import ThreadConfig, TimeBreakdown
from .sparse import COOMatrix, CSRMatrix, spmm_reference
from .sparse import suite

__version__ = "1.0.0"

__all__ = [
    "AllGather",
    "AsyncCoarse",
    "AsyncFine",
    "COOMatrix",
    "CSRMatrix",
    "CalibrationError",
    "Cluster",
    "CommunicationError",
    "ComputeModel",
    "ConfigurationError",
    "CostCoefficients",
    "DenseShifting",
    "DistDenseMatrix",
    "DistSparseMatrix",
    "DistSpMMAlgorithm",
    "FaultConfig",
    "FormatError",
    "MachineConfig",
    "NetworkModel",
    "OutOfMemoryError",
    "PartitionError",
    "ReproError",
    "ResilienceStats",
    "RowPartition",
    "ShapeError",
    "SimMPI",
    "SpMMResult",
    "StripeGeometry",
    "ThreadConfig",
    "TimeBreakdown",
    "TwoFace",
    "TwoFacePlan",
    "algorithms",
    "cluster",
    "core",
    "dist",
    "make_algorithm",
    "preprocess",
    "resilience_stats",
    "runtime",
    "sparse",
    "spmm_reference",
    "suite",
]
