"""Admission, batching, and K-panel fusion for SpMM serving.

:class:`ServeScheduler` replays a trace of :class:`ServeRequest`\\ s
through a deterministic virtual-clock event loop.  Queued requests
that target the same (matrix content, machine) group are *fused*:
their dense blocks are column-stacked into one wide K-panel, one
planned Two-Face SpMM runs at the fused width, and the output panel is
sliced back per request.  Fusion amortises the per-fetch and
per-multicast fixed costs of the distributed SpMM over the combined
width — the serving-side analogue of the paper's observation that
wider dense matrices communicate more efficiently per byte.

Correctness (DESIGN.md §8): stripe classification depends on K, and a
different classification changes the order stripes accumulate into
``C``.  Every engine therefore pins classification at one canonical
width (``ServePolicy.classify_k``, defaulting to the group's first
request width), so a fused K=64 panel and an unbatched K=8 run execute
the *same* plan shape and each request's output slice is byte-identical
either way.

Determinism: the loop advances on simulated time only — request
arrivals, modelled SpMM seconds, and policy delays.  No wall clock, no
unseeded randomness, and the underlying executor is bit-identical at
any ``REPRO_EXEC_WORKERS`` width, so a fixed trace replays identically
everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.machine import MachineConfig
from ..core.model import CostCoefficients
from ..core.plancache import (
    AUTO,
    PlanCache,
    PlanCacheLike,
    PlanCacheNamespace,
    matrix_content_digest,
    resolve_plan_cache,
)
from ..errors import ConfigurationError, ReproError
from ..gnn.engine import DistSpMMEngine
from ..sparse.coo import COOMatrix
from .request import (
    DONE,
    FAILED,
    REJECTED,
    RejectReason,
    ServeOutcome,
    ServeRequest,
)


@dataclass(frozen=True)
class ServePolicy:
    """Admission/batching policy knobs.

    Attributes:
        max_fused_k: cap on the total dense width of one fused
            dispatch; a group whose queued width reaches the cap
            dispatches immediately.  (A single request wider than the
            cap still runs, alone.)
        max_batch_delay: how long (simulated seconds) the scheduler
            holds a group's first request open for late joiners before
            dispatching; 0 disables time-based batching.
        max_queue_depth: backpressure bound — a request arriving while
            this many requests are queued (across all groups) is
            rejected at admission.
        classify_k: canonical classification width pinned on every
            engine.  None pins each group at its first request's width,
            which matches between a fused and an unbatched replay of
            the same trace as long as no request is rejected; set it
            explicitly when comparing replays under heavy backpressure.
        auto_layout: let the autotuner (:mod:`repro.tune`) pick each
            group's process-grid layout at group formation, tuned at
            the saturated fused-panel width (``max_fused_k``).  The
            tuned layout token becomes part of the group key, so
            requests tuned to different layouts are never fused into
            one K-panel.  False (the default) keeps the pre-tuner 1D
            path byte-identical.
    """

    max_fused_k: int = 256
    max_batch_delay: float = 0.05
    max_queue_depth: int = 64
    classify_k: Optional[int] = None
    auto_layout: bool = False

    def __post_init__(self) -> None:
        if self.max_fused_k < 1:
            raise ConfigurationError(
                f"max_fused_k must be >= 1: {self.max_fused_k}"
            )
        if self.max_batch_delay < 0:
            raise ConfigurationError(
                f"max_batch_delay must be >= 0: {self.max_batch_delay}"
            )
        if self.max_queue_depth < 1:
            raise ConfigurationError(
                f"max_queue_depth must be >= 1: {self.max_queue_depth}"
            )
        if self.classify_k is not None and self.classify_k < 1:
            raise ConfigurationError(
                f"classify_k must be >= 1: {self.classify_k}"
            )


@dataclass
class BatchRecord:
    """One fused dispatch: which requests ran together, and when."""

    batch_id: int
    matrix: str
    tenants: Tuple[str, ...]
    dispatched: float
    fused_k: int
    n_requests: int
    seconds: float


@dataclass
class ServeReport:
    """Everything a trace replay produced.

    ``outcomes`` is ordered by request id, so two replays of one trace
    (fused vs serial, different worker widths) compare positionally.
    """

    fused: bool
    outcomes: List[ServeOutcome] = field(default_factory=list)
    batches: List[BatchRecord] = field(default_factory=list)
    peak_queue_depth: int = 0

    def outcome_for(self, request_id: int) -> ServeOutcome:
        """The outcome of one request (KeyError if the id is unknown)."""
        for outcome in self.outcomes:
            if outcome.request_id == request_id:
                return outcome
        raise KeyError(f"no outcome for request {request_id}")

    def latencies(self) -> List[float]:
        """Completed requests' simulated latencies, in request order."""
        return [o.latency for o in self.outcomes if o.status == DONE]

    def serving_summary(self) -> Dict[str, float]:
        """The telemetry dict consumed by ``PerfLog.record_serve_cell``.

        ``requests_per_sec`` and ``makespan`` are simulated-time
        quantities: completed requests over the span from first arrival
        to last completion.
        """
        from ..bench.telemetry import latency_summary

        done = [o for o in self.outcomes if o.status == DONE]
        failed = [o for o in self.outcomes if o.status == FAILED]
        rejected = [o for o in self.outcomes if o.status == REJECTED]
        summary = latency_summary([o.latency for o in done])
        if done:
            first_arrival = min(
                o.completion - o.latency for o in self.outcomes
            )
            makespan = max(o.completion for o in done) - first_arrival
        else:
            makespan = 0.0
        span = max(makespan, 1e-12)
        return {
            "requests": len(self.outcomes),
            "completed": len(done),
            "rejected": len(rejected),
            "rejected_queue_full": sum(
                1 for o in rejected
                if o.reject_reason is RejectReason.QUEUE_FULL
            ),
            "rejected_shed": sum(
                1 for o in rejected
                if o.reject_reason is RejectReason.SHED
            ),
            "failed": len(failed),
            "batches": len(self.batches),
            "fusion_factor": (
                len(done) / len(self.batches) if self.batches else 0.0
            ),
            "p50_latency": summary["p50"],
            "p95_latency": summary["p95"],
            "p99_latency": summary["p99"],
            "requests_per_sec": len(done) / span if done else 0.0,
            "peak_queue_depth": self.peak_queue_depth,
            "deadline_misses": sum(
                1 for o in self.outcomes if o.deadline_missed
            ),
            "makespan": makespan,
        }


class ServeScheduler:
    """Multi-tenant SpMM serving against a fixed set of matrices.

    One scheduler owns one simulated service executor: dispatches are
    serialised on the virtual clock (``free_at``), engines persist
    across :meth:`serve` calls (warm plans), and every tenant gets a
    private :class:`~repro.core.plancache.PlanCacheNamespace` over the
    shared persistent cache.

    Args:
        machine: default simulated cluster for every request.
        matrices: suite name -> loaded matrix; requests reference
            matrices by these names.
        policy: admission/batching policy (default :class:`ServePolicy`).
        stripe_width / coeffs: forwarded to each group's engine.
        plan_cache: the *shared* persistent cache tenants namespace
            into; AUTO resolves ``REPRO_PLAN_CACHE``, None disables
            persistent caching (engines still reuse plans per width).
        tuner: the autotuner consulted when ``policy.auto_layout`` is
            on; built lazily (TwoFace over every legal layout of the
            default machine) when omitted.  Its content-addressed
            decision cache makes repeat group formations a dictionary
            lookup.
    """

    def __init__(
        self,
        machine: MachineConfig,
        matrices: Dict[str, COOMatrix],
        policy: Optional[ServePolicy] = None,
        stripe_width: Optional[int] = None,
        coeffs: Optional[CostCoefficients] = None,
        plan_cache: PlanCacheLike = AUTO,
        tuner=None,
    ):
        if not matrices:
            raise ConfigurationError("scheduler needs at least one matrix")
        self.machine = machine
        self.matrices = dict(matrices)
        self.policy = policy if policy is not None else ServePolicy()
        self.stripe_width = stripe_width
        self.coeffs = coeffs
        parent = resolve_plan_cache(plan_cache)
        if isinstance(parent, PlanCacheNamespace):
            parent = parent.parent
        self._shared_cache: Optional[PlanCache] = parent
        self._tenant_caches: Dict[str, Optional[PlanCacheNamespace]] = {}
        self._engines: Dict[Tuple, DistSpMMEngine] = {}
        self._tuners: Dict[Tuple, object] = {}
        self._group_grids: Dict[Tuple, object] = {}
        if tuner is not None:
            self._tuners[self._machine_shape(tuner.machine)] = tuner

    # ------------------------------------------------------------------
    def tenant_cache(self, tenant: str) -> Optional[PlanCacheNamespace]:
        """The tenant's plan-cache namespace (None when caching is off).

        Namespaces are memoised, so a tenant's LRU and stats persist
        across traces served by this scheduler.
        """
        if self._shared_cache is None:
            return None
        if tenant not in self._tenant_caches:
            self._tenant_caches[tenant] = PlanCacheNamespace(
                self._shared_cache, tenant
            )
        return self._tenant_caches[tenant]

    @staticmethod
    def _machine_shape(machine: MachineConfig) -> Tuple:
        return (
            machine.n_nodes,
            machine.threads_per_node,
            machine.memory_capacity,
        )

    def _tuner_for(self, machine: MachineConfig, pin: int):
        """The (memoised) autotuner for one (machine shape, pin).

        Serving engines execute Two-Face, so the candidate set is
        TwoFace over every legal layout; decisions are shared across
        groups via the tuner's content-addressed cache.  The tuner
        models classification at ``pin`` — the same width the group's
        engine will pin at — so the static 1D configuration is always
        one of its candidates and a tuned group can never be slower
        than the untuned path.  An injected tuner (the ``tuner`` ctor
        arg, stored under the bare machine shape) answers every pin.
        """
        shape = self._machine_shape(machine)
        injected = self._tuners.get(shape)
        if injected is not None:
            return injected
        key = shape + (pin,)
        tuner = self._tuners.get(key)
        if tuner is None:
            from ..tune import Tuner

            tuner = Tuner(
                machine,
                coeffs=self.coeffs,
                algorithms=("TwoFace",),
                stripe_width=self.stripe_width,
                classify_k=pin,
                plan_cache=self._shared_cache,
            )
            self._tuners[key] = tuner
        return tuner

    def _group_key(self, request: ServeRequest) -> Tuple:
        if request.matrix not in self.matrices:
            raise ConfigurationError(
                f"request {request.request_id} references unknown matrix "
                f"{request.matrix!r}"
            )
        machine = request.machine or self.machine
        key = (
            matrix_content_digest(self.matrices[request.matrix]),
            machine.n_nodes,
            machine.threads_per_node,
            machine.memory_capacity,
        )
        if not self.policy.auto_layout:
            return key
        # Layout decision at group formation: the tuned token joins
        # the key, so requests whose cells tune to different layouts
        # land in different groups and are never fused.  Tuning is at
        # the saturated dispatch width (the fused-panel cap) rather
        # than the single request's k — throughput is set by the full
        # K-panels — but classification is modelled at the pin the
        # group's engine will actually use (``classify_k`` or the
        # lead's width).  This is self-consistent: a group's lead is
        # the first request whose token formed the group, and that
        # request tuned under its own k.
        pin = (
            self.policy.classify_k
            if self.policy.classify_k is not None
            else request.k
        )
        decision = self._tuner_for(machine, pin).tune(
            self.matrices[request.matrix],
            max(request.k, self.policy.max_fused_k),
        )
        key = key + (decision.grid_token,)
        self._group_grids.setdefault(key, decision.grid)
        return key

    def _engine_for(self, key: Tuple, lead: ServeRequest) -> DistSpMMEngine:
        """The group's engine, built on first dispatch.

        The classification pin is fixed here: the policy's
        ``classify_k`` or, by default, the lead (earliest) request's
        width — identical between fused and serial replays of one
        trace, so their plans accumulate ``C`` in the same order.

        Autotuned groups use the same pin: the layout decision was
        modelled under ``classify_k = lead.k`` (see ``_group_key``), so
        the engine runs exactly the configuration the tuner priced.
        """
        engine = self._engines.get(key)
        if engine is None:
            pin = self.policy.classify_k
            engine = DistSpMMEngine(
                self.matrices[lead.matrix],
                lead.machine or self.machine,
                stripe_width=self.stripe_width,
                coeffs=self.coeffs,
                plan_cache=None,
                classify_k=pin if pin is not None else lead.k,
                grid=self._group_grids.get(key),
            )
            self._engines[key] = engine
        return engine

    def tuner_stats(self) -> Dict[str, dict]:
        """Per-(machine shape, pin) autotuner telemetry (empty off).

        Built tuners are labelled ``p<nodes>t<threads>k<pin>``; an
        injected tuner (no pin of its own) drops the ``k`` suffix.
        """
        return {
            f"p{key[0]}t{key[1]}"
            + (f"k{key[3]}" if len(key) > 3 else ""): tuner.stats()
            for key, tuner in self._tuners.items()
        }

    # ------------------------------------------------------------------
    def serve(
        self, requests: Sequence[ServeRequest], fuse: bool = True
    ) -> ServeReport:
        """Replay ``requests`` through the virtual-clock event loop.

        Args:
            requests: the trace; any order (replay sorts by arrival,
                ties broken by request id).
            fuse: False serves every request unbatched (the serial
                baseline the CLI and benchmarks compare against).

        Returns:
            A :class:`ServeReport` with per-request outcomes in
            request-id order.
        """
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("request ids must be unique")
        pending = sorted(requests, key=lambda r: (r.arrival, r.request_id))
        queues: Dict[Tuple, List[ServeRequest]] = {}
        outcomes: Dict[int, ServeOutcome] = {}
        report = ServeReport(fused=fuse)
        state = {"queued": 0, "free_at": 0.0, "idx": 0, "batch_id": 0}

        def admit_until(t: float) -> None:
            """Admit (or reject) every arrival at or before ``t``."""
            while (
                state["idx"] < len(pending)
                and pending[state["idx"]].arrival <= t
            ):
                req = pending[state["idx"]]
                state["idx"] += 1
                if state["queued"] >= self.policy.max_queue_depth:
                    outcomes[req.request_id] = ServeOutcome(
                        request_id=req.request_id,
                        tenant=req.tenant,
                        matrix=req.matrix,
                        status=REJECTED,
                        completion=req.arrival,
                        reject_reason=RejectReason.QUEUE_FULL,
                    )
                    continue
                queues.setdefault(self._group_key(req), []).append(req)
                state["queued"] += 1
                report.peak_queue_depth = max(
                    report.peak_queue_depth, state["queued"]
                )

        def ready_at(queue: List[ServeRequest]) -> float:
            """When this group is willing to dispatch.

            The queue is in arrival order, so each branch returns a
            time no earlier than every batched member's arrival —
            a dispatch never contains a request from its future.
            """
            first = queue[0]
            if not fuse:
                return first.arrival
            cum = 0
            for req in queue:
                if cum and cum + req.k > self.policy.max_fused_k:
                    # This request does not fit: the batch ahead of it
                    # became full the moment it arrived.
                    return req.arrival
                cum += req.k
                if cum >= self.policy.max_fused_k:
                    return req.arrival
            if state["idx"] >= len(pending):
                # No future joiners exist; dispatch once the whole
                # queue has arrived instead of waiting out the delay.
                return queue[-1].arrival
            return first.arrival + self.policy.max_batch_delay

        def select() -> Tuple[Tuple, float]:
            """The (group, time) of the next dispatch."""
            best_key = None
            best = (float("inf"), -1)
            for key, queue in queues.items():
                t = max(ready_at(queue), state["free_at"])
                cand = (t, queue[0].request_id)
                if best_key is None or cand < best:
                    best_key, best = key, cand
            assert best_key is not None
            return best_key, best[0]

        while state["idx"] < len(pending) or state["queued"]:
            if state["queued"] == 0:
                admit_until(pending[state["idx"]].arrival)
                continue
            # Fixed point: a dispatch at time t must see every arrival
            # <= t (late joiners can pull a group's dispatch earlier by
            # filling its K cap, never push it later).
            while True:
                key, t = select()
                if (
                    state["idx"] < len(pending)
                    and pending[state["idx"]].arrival <= t
                ):
                    admit_until(t)
                    continue
                break
            self._dispatch(key, t, fuse, queues, outcomes, state, report)

        report.outcomes = [
            outcomes[i] for i in sorted(outcomes)
        ]
        return report

    # ------------------------------------------------------------------
    def _dispatch(
        self,
        key: Tuple,
        t: float,
        fuse: bool,
        queues: Dict[Tuple, List[ServeRequest]],
        outcomes: Dict[int, ServeOutcome],
        state: Dict[str, float],
        report: ServeReport,
    ) -> None:
        """Fuse the head of group ``key``'s queue and run it at ``t``."""
        queue = queues[key]
        batch: List[ServeRequest] = []
        fused_k = 0
        for req in queue:
            if batch and (
                not fuse or fused_k + req.k > self.policy.max_fused_k
            ):
                break
            batch.append(req)
            fused_k += req.k
            if not fuse:
                break
        del queue[: len(batch)]
        if not queue:
            del queues[key]
        state["queued"] -= len(batch)

        lead = batch[0]
        engine = self._engine_for(key, lead)
        cache = self.tenant_cache(lead.tenant)
        if len(batch) == 1:
            B = lead.B
        else:
            B = np.concatenate([r.B for r in batch], axis=1)
        batch_id = int(state["batch_id"])
        state["batch_id"] += 1
        try:
            C, seconds = engine.multiply(B, plan_cache=cache)
        except ReproError:
            # A failed dispatch consumes no simulated executor time,
            # but the clock still advances to the dispatch instant so
            # batch timestamps stay monotone.
            state["free_at"] = max(state["free_at"], t)
            for req in batch:
                outcomes[req.request_id] = ServeOutcome(
                    request_id=req.request_id,
                    tenant=req.tenant,
                    matrix=req.matrix,
                    status=FAILED,
                    batch_id=batch_id,
                    fused_k=fused_k,
                    dispatched=t,
                    completion=t,
                    latency=t - req.arrival,
                    deadline_missed=(
                        req.deadline is not None and t > req.deadline
                    ),
                )
            report.batches.append(
                BatchRecord(
                    batch_id, lead.matrix,
                    tuple(r.tenant for r in batch), t, fused_k,
                    len(batch), 0.0,
                )
            )
            return
        completion = t + seconds
        state["free_at"] = completion
        offset = 0
        for req in batch:
            piece = C[:, offset:offset + req.k]
            offset += req.k
            outcomes[req.request_id] = ServeOutcome(
                request_id=req.request_id,
                tenant=req.tenant,
                matrix=req.matrix,
                status=DONE,
                batch_id=batch_id,
                fused_k=fused_k,
                dispatched=t,
                completion=completion,
                latency=completion - req.arrival,
                deadline_missed=(
                    req.deadline is not None and completion > req.deadline
                ),
                C=np.ascontiguousarray(piece),
            )
        report.batches.append(
            BatchRecord(
                batch_id, lead.matrix, tuple(r.tenant for r in batch),
                t, fused_k, len(batch), seconds,
            )
        )
