"""Multi-tenant SpMM serving with K-panel request fusion.

The serving layer turns the repeated-SpMM engine
(:class:`~repro.gnn.engine.DistSpMMEngine`) into a request server:
tenants submit dense blocks against shared preprocessed matrices, an
admission/batching scheduler fuses compatible queued requests into one
wide K-panel SpMM, and every request gets back its own output slice —
byte-identical to what an unbatched run would have produced (the
classification-pin argument of DESIGN.md §8).

Entry points: :class:`ServeScheduler` (the deterministic virtual-clock
event loop), :class:`ServePolicy` (fusion/backpressure knobs),
:mod:`repro.serve.traces` (seeded synthetic traces), and the
``repro serve --trace`` CLI for fused-vs-serial replays.
"""

from .request import (
    DONE,
    FAILED,
    REJECTED,
    RejectReason,
    ServeOutcome,
    ServeRequest,
)
from .resilience import (
    CircuitBreaker,
    LoadBalancer,
    Replica,
    ReplicaSet,
    ResilienceReport,
    ResiliencePolicy,
    ResilientScheduler,
)
from .scheduler import BatchRecord, ServePolicy, ServeReport, ServeScheduler
from .traces import (
    DEFAULT_TENANTS,
    TRACE_KINDS,
    bursty_trace,
    diurnal_trace,
    hot_matrix_trace,
    make_trace,
)

__all__ = [
    "BatchRecord",
    "CircuitBreaker",
    "DEFAULT_TENANTS",
    "DONE",
    "FAILED",
    "LoadBalancer",
    "REJECTED",
    "RejectReason",
    "Replica",
    "ReplicaSet",
    "ResiliencePolicy",
    "ResilienceReport",
    "ResilientScheduler",
    "ServeOutcome",
    "ServePolicy",
    "ServeReport",
    "ServeRequest",
    "ServeScheduler",
    "TRACE_KINDS",
    "bursty_trace",
    "diurnal_trace",
    "hot_matrix_trace",
    "make_trace",
]
