"""Serving request/outcome records for the multi-tenant SpMM engine.

A :class:`ServeRequest` is one tenant's ask: multiply the (shared,
preprocessed) sparse matrix against a private dense block of width K,
arriving at a simulated instant and optionally carrying a completion
deadline.  A :class:`ServeOutcome` is what the scheduler hands back —
the request's slice of the (possibly fused) output panel plus the
simulated timing that produced it.

Everything here is plain data; the event loop lives in
:mod:`repro.serve.scheduler`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..cluster.machine import MachineConfig
from ..errors import ConfigurationError, ShapeError

#: Outcome status values.
DONE = "done"
REJECTED = "rejected"
FAILED = "failed"


class RejectReason(str, enum.Enum):
    """Why a request was rejected (structured; ``str`` for telemetry).

    Attributes:
        QUEUE_FULL: backpressure — the global queue was at
            ``max_queue_depth`` when the request arrived.
        SHED: SLO-aware load shedding — the resilience tier dropped it
            as the lowest-priority queued work under pressure.
    """

    QUEUE_FULL = "queue_full"
    SHED = "shed_low_priority"


@dataclass
class ServeRequest:
    """One tenant request: ``C_slice = A @ B`` against a named matrix.

    Attributes:
        request_id: unique id; ties in arrival time are broken by id,
            so a trace replays identically regardless of how it was
            constructed.
        tenant: tenant label — selects the plan-cache namespace charged
            for any cold plan build this request triggers.
        matrix: suite matrix name the request multiplies against.
        B: dense input block, shape ``(A.shape[1], K)``.
        arrival: simulated arrival instant (seconds, virtual clock).
        deadline: optional absolute simulated completion deadline; a
            completion after it is recorded as a deadline miss (the
            request still completes — misses are telemetry, not drops).
        machine: optional per-request machine config; None uses the
            scheduler's.  Requests only fuse with requests on the same
            (matrix content, machine) group.
        priority: SLO class, >= 0; higher is more important.  The
            baseline scheduler ignores it (pure FIFO); the resilience
            tier sheds lowest-priority queued work first under
            pressure.
    """

    request_id: int
    tenant: str
    matrix: str
    B: np.ndarray
    arrival: float
    deadline: Optional[float] = None
    machine: Optional[MachineConfig] = None
    priority: int = 0

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ConfigurationError(
                f"priority must be >= 0, got {self.priority}"
            )
        self.B = np.asarray(self.B, dtype=np.float64)
        if self.B.ndim != 2 or self.B.shape[1] < 1:
            raise ShapeError(
                f"request B must be 2-D with >=1 column, got {self.B.shape}"
            )
        if self.arrival < 0:
            raise ConfigurationError(
                f"arrival must be >= 0, got {self.arrival}"
            )
        if self.deadline is not None and self.deadline < self.arrival:
            raise ConfigurationError(
                f"deadline {self.deadline} precedes arrival {self.arrival}"
            )

    @property
    def k(self) -> int:
        """Dense width of this request's block."""
        return int(self.B.shape[1])


@dataclass
class ServeOutcome:
    """What the scheduler produced for one request.

    Attributes:
        request_id / tenant / matrix: copied from the request.
        status: ``"done"``, ``"rejected"`` (backpressure at admission),
            or ``"failed"`` (the underlying simulated SpMM raised).
        batch_id: id of the fused dispatch that served the request
            (None when rejected).
        fused_k: total dense width of that dispatch (equals the
            request's own K when it ran unbatched).
        dispatched: simulated dispatch instant (None when rejected).
        completion: simulated completion instant (arrival for rejects).
        latency: ``completion - arrival`` (0.0 for rejects).
        deadline_missed: True when a deadline existed and completion
            overran it.
        reject_reason: structured :class:`RejectReason` (None unless
            rejected).
        replica: id of the replica that produced the result (None on
            the single-executor path).
        attempts: dispatch attempts the resilience tier spent on the
            request's group (0 on the single-executor path).
        hedged: True when a hedged backup dispatch was issued for the
            request's group.
        degraded: degradation mode applied by the resilience tier
            (e.g. ``"k_panel"``), or None.
        C: the request's own output slice ``A @ B`` (None unless done).
    """

    request_id: int
    tenant: str
    matrix: str
    status: str
    batch_id: Optional[int] = None
    fused_k: int = 0
    dispatched: Optional[float] = None
    completion: float = 0.0
    latency: float = 0.0
    deadline_missed: bool = False
    reject_reason: Optional[RejectReason] = None
    replica: Optional[int] = None
    attempts: int = 0
    hedged: bool = False
    degraded: Optional[str] = None
    C: Optional[np.ndarray] = field(default=None, repr=False)
