"""Fault-tolerant replicated serving on the virtual clock.

The single-executor :class:`~repro.serve.scheduler.ServeScheduler` has
no failure semantics: one crashed batch or one degraded link takes the
whole tenant down.  This module layers a resilience tier on top of it
(DESIGN.md §12):

* A :class:`ReplicaSet` runs N independent simulated executors.  Each
  replica gets its own seeded :class:`~repro.cluster.faults.FaultPlan`
  (``seed + rid``), its own plan-cache namespace
  (``replica<rid>/<tenant>``), its own engines, and an optional
  per-replica process grid — so replicas fail *independently*.
* A :class:`LoadBalancer` orders replicas per dispatch by a
  health-weighted score: earliest availability (the replica's virtual
  ``free_at``) plus its expected service time — the replica's own
  latency EWMA scaled by a health factor fed by periodic synthetic
  probes (cadence ``probe_interval``) that measure the replica's
  static fault profile (compute skew × worst incoming link).
* Request execution gains per-attempt *timeouts* (a dispatch whose
  simulated service time exceeds ``timeout`` charges exactly
  ``timeout`` seconds and its result is discarded), bounded
  *retry-with-exponential-backoff* across replicas, and optional
  *hedged dispatch*: when the primary has not completed by
  ``hedge_delay``, a backup runs on the next-best replica, the first
  success wins, and every non-winning hedge participant's charged
  seconds land in the ``hedge_wasted_seconds`` counter.
* A per-replica :class:`CircuitBreaker` (closed → open → half-open,
  virtual-clock cooldowns) quarantines replicas whose recent failure
  rate or service-latency drift (EWMA vs the fleet's) exceeds
  thresholds.
* Admission is SLO-aware: requests carry ``priority``/``deadline``;
  under queue pressure the scheduler *degrades* (prefers fused widths
  whose plans are already cached — ``"stale_plan"`` — or halves the
  fused K-panel cap — ``"k_panel"``) and, past the shed threshold,
  drops the lowest-priority queued work
  (:class:`~repro.serve.request.RejectReason.SHED`) instead of
  rejecting new arrivals outright.

Determinism contract: every decision — routing order, retry schedule,
breaker transitions, shed victims — is a pure function of the virtual
clock, the request trace, and the fault seeds.  The underlying
executor is bit-identical at any ``REPRO_EXEC_WORKERS`` width, so a
fixed trace replays with identical routing traces and counters
everywhere; and because injected faults never corrupt results (PR 5's
exactness contract), every *completed* request's ``C`` slice is
byte-identical to its fault-free run.

Executor crashes are injected per dispatch *attempt*: each attempt
threads a fresh ``crash_epoch`` into the replica's
:class:`~repro.cluster.faults.FaultConfig` (via ``dataclasses.replace``,
which perturbs no other fault stream), so whether attempt ``n`` on
replica ``r`` crashes is a fixed function of ``(seed + r, n)``.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass, field, fields, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..cluster.faults import FaultConfig, compile_faults, resilience_stats
from ..cluster.machine import MachineConfig
from ..core.model import CostCoefficients
from ..core.plancache import AUTO, PlanCacheLike
from ..errors import ConfigurationError, ExecutorCrashError, ReproError
from ..gnn.engine import DistSpMMEngine
from ..sparse.coo import COOMatrix
from .request import (
    DONE,
    FAILED,
    REJECTED,
    RejectReason,
    ServeOutcome,
    ServeRequest,
)
from .scheduler import BatchRecord, ServePolicy, ServeReport, ServeScheduler

#: Circuit-breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"

#: Attempt outcome kinds (routing-trace vocabulary).
OK = "ok"
CRASH = "crash"
TIMEOUT = "timeout"
ERROR = "error"


@dataclass(frozen=True)
class ResiliencePolicy:
    """Knobs of the resilience tier (all times are simulated seconds).

    Attributes:
        n_replicas: independent simulated executors behind the balancer.
        timeout: per-attempt service-time cap; an attempt whose
            simulated seconds exceed it charges exactly ``timeout``
            and counts as a failure.  None disables timeouts.
        max_retries: re-dispatches after the first attempt (hedge
            included) before a group is marked FAILED.
        retry_backoff_base: backoff before the first retry; doubles
            per subsequent retry.
        hedge_delay: issue a backup dispatch on the next-best replica
            when the primary has not completed this long after the
            dispatch instant.  None disables hedging.
        crash_detect_seconds: virtual seconds to detect an injected
            executor crash (the failed attempt's only charge).
        probe_interval: cadence of synthetic health probes.
        probe_cost: nominal probe service time; a probe observes
            ``probe_cost × static slowness`` of the replica.
        ewma_alpha: smoothing of latency/health EWMAs.
        breaker_window: recent attempts per replica the failure-rate
            trigger looks at.
        breaker_failure_threshold: open the breaker when the windowed
            failure rate reaches this (window must be full).
        breaker_cooldown: open → half-open after this long.
        breaker_drift_factor: open when a replica's service-latency
            EWMA exceeds this multiple of the fleet EWMA (the p99-drift
            analogue on smoothed service time).
        degrade_queue_fraction: queue pressure (fraction of
            ``max_queue_depth``) above which dispatches degrade
            (stale-plan width preference, then K-panel halving).
        shed_queue_fraction: pressure above which the lowest-priority
            queued requests are shed.
        protect_priority: requests with ``priority >= protect_priority``
            are never shed.
    """

    n_replicas: int = 2
    timeout: Optional[float] = None
    max_retries: int = 4
    retry_backoff_base: float = 2e-3
    hedge_delay: Optional[float] = None
    crash_detect_seconds: float = 1e-3
    probe_interval: float = 0.25
    probe_cost: float = 1e-4
    ewma_alpha: float = 0.3
    breaker_window: int = 8
    breaker_failure_threshold: float = 0.5
    breaker_cooldown: float = 0.5
    breaker_drift_factor: float = 4.0
    degrade_queue_fraction: float = 0.75
    shed_queue_fraction: float = 0.9
    protect_priority: int = 1

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ConfigurationError(
                f"n_replicas must be >= 1: {self.n_replicas}"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0: {self.max_retries}"
            )
        for name in (
            "retry_backoff_base", "crash_detect_seconds", "probe_cost",
            "breaker_cooldown",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(
                    f"{name} must be >= 0: {getattr(self, name)}"
                )
        for name in ("timeout", "hedge_delay"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{name} must be positive (or None): {value}"
                )
        if self.probe_interval <= 0:
            raise ConfigurationError(
                f"probe_interval must be positive: {self.probe_interval}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ConfigurationError(
                f"ewma_alpha must be in (0, 1]: {self.ewma_alpha}"
            )
        if self.breaker_window < 1:
            raise ConfigurationError(
                f"breaker_window must be >= 1: {self.breaker_window}"
            )
        if not 0.0 < self.breaker_failure_threshold <= 1.0:
            raise ConfigurationError(
                "breaker_failure_threshold must be in (0, 1]: "
                f"{self.breaker_failure_threshold}"
            )
        if self.breaker_drift_factor < 1.0:
            raise ConfigurationError(
                "breaker_drift_factor must be >= 1: "
                f"{self.breaker_drift_factor}"
            )
        if not 0.0 < self.degrade_queue_fraction <= 1.0:
            raise ConfigurationError(
                "degrade_queue_fraction must be in (0, 1]: "
                f"{self.degrade_queue_fraction}"
            )
        if not 0.0 < self.shed_queue_fraction <= 1.0:
            raise ConfigurationError(
                "shed_queue_fraction must be in (0, 1]: "
                f"{self.shed_queue_fraction}"
            )
        if self.protect_priority < 0:
            raise ConfigurationError(
                f"protect_priority must be >= 0: {self.protect_priority}"
            )


class CircuitBreaker:
    """Per-replica closed → open → half-open breaker (virtual clock).

    ``allow(t)`` gates dispatch; ``record(t, ok)`` feeds outcomes.  The
    breaker opens when the windowed failure rate reaches the threshold
    or when :meth:`check_drift` sees the replica's service-latency EWMA
    drift past ``drift_factor`` × the fleet's.  After ``cooldown``
    virtual seconds it half-opens: one probe dispatch is allowed, and
    its outcome closes or re-opens the breaker.
    """

    def __init__(self, window: int, failure_threshold: float,
                 cooldown: float, drift_factor: float):
        self.window = window
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.drift_factor = drift_factor
        self.state = CLOSED
        self.opens = 0
        self._open_until = 0.0
        self._outcomes: collections.deque = collections.deque(maxlen=window)

    def allow(self, t: float) -> bool:
        """May a dispatch go to this replica at virtual time ``t``?"""
        if self.state == OPEN:
            if t < self._open_until:
                return False
            self.state = HALF_OPEN
        return True

    def record(self, t: float, ok: bool) -> None:
        """Feed one attempt outcome observed at time ``t``."""
        if self.state == HALF_OPEN:
            if ok:
                self.state = CLOSED
                self._outcomes.clear()
            else:
                self._trip(t)
            return
        self._outcomes.append(ok)
        if len(self._outcomes) == self.window:
            failures = sum(1 for o in self._outcomes if not o)
            if failures / self.window >= self.failure_threshold:
                self._trip(t)

    def check_drift(self, t: float, replica_ewma: Optional[float],
                    fleet_ewma: Optional[float]) -> None:
        """Open on service-latency drift vs the fleet (both EWMAs must
        exist; a lone replica never drifts against itself)."""
        if (
            self.state == CLOSED
            and replica_ewma is not None
            and fleet_ewma is not None
            and fleet_ewma > 0.0
            and replica_ewma > self.drift_factor * fleet_ewma
        ):
            self._trip(t)

    def _trip(self, t: float) -> None:
        self.state = OPEN
        self.opens += 1
        self._open_until = t + self.cooldown
        self._outcomes.clear()

    def describe(self) -> Dict[str, object]:
        return {"state": self.state, "opens": self.opens}


@dataclass
class ReplicaStats:
    """Per-replica counters (all deterministic under a fixed trace)."""

    dispatches: int = 0
    successes: int = 0
    failures: int = 0
    crashes: int = 0
    timeouts: int = 0
    probes: int = 0
    busy_seconds: float = 0.0
    rget_failures: int = 0
    rget_retries: int = 0
    lane_fallbacks: int = 0

    def as_dict(self) -> Dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class Replica:
    """One simulated service executor behind the balancer.

    Owns its machine (per-replica fault seed), its engines (one per
    request group), its virtual ``free_at`` clock, its breaker, and
    its health/latency EWMAs.  The plan-cache namespace is applied at
    dispatch time by labelling the tenant ``replica<rid>/<tenant>``.
    """

    def __init__(self, rid: int, machine: MachineConfig,
                 fault_config: Optional[FaultConfig],
                 breaker: CircuitBreaker, grid=None):
        self.rid = rid
        self.fault_config = fault_config
        self.machine = replace(machine, faults=fault_config)
        self.grid = grid
        self.breaker = breaker
        self.engines: Dict[Tuple, DistSpMMEngine] = {}
        self.free_at = 0.0
        self.latency_ewma: Optional[float] = None
        self.health: float = 1.0
        self.next_probe_at = 0.0
        self.next_epoch = 0
        self.stats = ReplicaStats()
        # Static fault profile for synthetic probes: mean compute skew
        # times the worst incoming link multiplier.  Crash decisions
        # are per-epoch, so compiling here (epoch 0) never raises.
        plan = (
            compile_faults(fault_config, machine.n_nodes)
            if fault_config is not None else None
        )
        if plan is None:
            self.static_slowness = 1.0
        else:
            skews = [
                plan.compute_skew(r) for r in range(machine.n_nodes)
            ]
            self.static_slowness = (sum(skews) / len(skews)) * max(
                plan.worst_incoming_scale(r)
                for r in range(machine.n_nodes)
            )

    def machine_for_epoch(self, epoch: int) -> MachineConfig:
        """The dispatch machine with a fresh crash epoch threaded in."""
        if self.fault_config is None:
            return self.machine
        return replace(
            self.machine, faults=replace(self.fault_config,
                                         crash_epoch=epoch)
        )

    def observe_latency(self, sample: float, alpha: float) -> None:
        if self.latency_ewma is None:
            self.latency_ewma = sample
        else:
            self.latency_ewma = (
                alpha * sample + (1.0 - alpha) * self.latency_ewma
            )

    def describe(self) -> Dict[str, object]:
        info = self.stats.as_dict()
        info.update(self.breaker.describe())
        info["health"] = self.health
        info["latency_ewma"] = self.latency_ewma
        info["free_at"] = self.free_at
        return info


class ReplicaSet:
    """N independent replicas with derived fault seeds.

    Replica ``rid`` gets ``seed + rid``: every fault draw mixes the
    seed through splitmix64, so consecutive seeds yield independent
    fault streams — replicas straggle, degrade, and crash on their own
    schedules.
    """

    def __init__(self, machine: MachineConfig, n: int,
                 fault_config: Optional[FaultConfig],
                 policy: ResiliencePolicy,
                 grids: Optional[Sequence] = None):
        if grids is not None and len(grids) not in (0, n):
            raise ConfigurationError(
                f"grids must have one entry per replica ({n}), "
                f"got {len(grids)}"
            )
        self.policy = policy
        self.fleet_ewma: Optional[float] = None
        self.replicas: List[Replica] = []
        for rid in range(n):
            rep_faults = (
                replace(fault_config, seed=fault_config.seed + rid)
                if fault_config is not None else None
            )
            breaker = CircuitBreaker(
                policy.breaker_window,
                policy.breaker_failure_threshold,
                policy.breaker_cooldown,
                policy.breaker_drift_factor,
            )
            grid = grids[rid] if grids else None
            self.replicas.append(
                Replica(rid, machine, rep_faults, breaker, grid=grid)
            )

    def __len__(self) -> int:
        return len(self.replicas)

    def __iter__(self):
        return iter(self.replicas)

    def __getitem__(self, rid: int) -> Replica:
        return self.replicas[rid]

    def observe_fleet(self, sample: float) -> None:
        alpha = self.policy.ewma_alpha
        if self.fleet_ewma is None:
            self.fleet_ewma = sample
        else:
            self.fleet_ewma = (
                alpha * sample + (1.0 - alpha) * self.fleet_ewma
            )

    def run_probes(self, t: float) -> int:
        """Run every synthetic probe due at or before ``t``.

        A probe observes ``probe_cost × static slowness`` and folds the
        slowness into the replica's health EWMA.  Probes are
        out-of-band: they consume no executor time.
        """
        ran = 0
        alpha = self.policy.ewma_alpha
        for rep in self.replicas:
            while rep.next_probe_at <= t:
                rep.next_probe_at += self.policy.probe_interval
                rep.health = (
                    alpha * rep.static_slowness
                    + (1.0 - alpha) * rep.health
                )
                rep.stats.probes += 1
                ran += 1
        return ran


class LoadBalancer:
    """Health-weighted replica ordering for one dispatch.

    The score of a replica at time ``t`` is when it could *finish* the
    work: ``max(free_at, t)`` plus its expected service time — its own
    latency EWMA (the fleet's while it has no samples) scaled by the
    probe-fed health factor.  Breaker-blocked replicas are excluded
    unless every replica is blocked (then all are eligible: serving
    degraded beats serving nothing).  Ties break on replica id.
    """

    def __init__(self, replica_set: ReplicaSet):
        self.replica_set = replica_set

    def _score(self, rep: Replica, t: float) -> float:
        base = rep.latency_ewma
        if base is None:
            base = self.replica_set.fleet_ewma or 0.0
        return max(rep.free_at, t) + rep.health * base

    def order(self, t: float,
              exclude: Tuple[int, ...] = ()) -> List[Replica]:
        """Replicas to try at ``t``, best first; ``exclude`` demotes
        (never removes) already-tried replicas."""
        eligible = [
            rep for rep in self.replica_set if rep.breaker.allow(t)
        ]
        if not eligible:
            eligible = list(self.replica_set)
        return sorted(
            eligible,
            key=lambda rep: (
                rep.rid in exclude, self._score(rep, t), rep.rid,
            ),
        )


@dataclass
class ResilienceReport(ServeReport):
    """A :class:`~repro.serve.scheduler.ServeReport` plus the
    resilience tier's counters and the deterministic routing trace."""

    retries: int = 0
    hedges: int = 0
    hedge_wins: int = 0
    hedge_wasted_seconds: float = 0.0
    crashes: int = 0
    timeouts: int = 0
    shed: int = 0
    degraded_dispatches: int = 0
    probes: int = 0
    breaker_opens: int = 0
    replica_stats: Dict[int, Dict[str, object]] = field(
        default_factory=dict
    )
    #: One tuple per dispatched group:
    #: ``(batch_id, winner_replica, attempts, hedged, status)``.
    #: Replaying the same trace with the same seeds must reproduce
    #: this list exactly, at any worker-pool width.
    routing_trace: List[Tuple[int, int, int, bool, str]] = field(
        default_factory=list
    )

    @property
    def availability(self) -> float:
        """Completed fraction of all submitted requests (1.0 empty)."""
        if not self.outcomes:
            return 1.0
        done = sum(1 for o in self.outcomes if o.status == DONE)
        return done / len(self.outcomes)

    def counter_trace(self) -> Tuple:
        """Everything that must replay identically: the routing trace
        plus retry/hedge/breaker/shed counters."""
        return (
            tuple(self.routing_trace),
            self.retries,
            self.hedges,
            self.hedge_wins,
            round(self.hedge_wasted_seconds, 12),
            self.crashes,
            self.timeouts,
            self.shed,
            self.degraded_dispatches,
            self.breaker_opens,
        )

    def serving_summary(self) -> Dict[str, float]:
        summary = super().serving_summary()
        summary.update({
            "availability": self.availability,
            "replicas": len(self.replica_stats),
            "retries": self.retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "hedge_wasted_seconds": self.hedge_wasted_seconds,
            "crashes": self.crashes,
            "timeouts": self.timeouts,
            "shed": self.shed,
            "degraded": self.degraded_dispatches,
            "probes": self.probes,
            "breaker_opens": self.breaker_opens,
        })
        return summary


class ResilientScheduler:
    """The fault-tolerant serving tier: N replicas, one event loop.

    Drop-in analogue of :class:`~repro.serve.scheduler.ServeScheduler`
    — same trace in, a :class:`ResilienceReport` out — but dispatches
    route through the :class:`LoadBalancer` onto a :class:`ReplicaSet`
    with timeouts, retries, hedging, circuit breakers, and SLO-aware
    admission.  Group keys (and any autotuned layouts) come from a
    fault-free *router* scheduler, so grouping and classification pins
    are identical to the single-executor path.

    Args:
        machine: base cluster every replica clones (fault seeds vary).
        matrices: suite name -> loaded matrix.
        policy: admission/fusion policy (shared with the router).
        resilience: the resilience knobs (:class:`ResiliencePolicy`).
        faults: fault config injected into the replicas; None serves
            fault-free (the resilience machinery still routes).
            Replica ``rid`` runs under ``seed + rid``.
        stripe_width / coeffs / plan_cache: forwarded to engines; the
            shared persistent cache is namespaced per replica *and*
            tenant (``replica<rid>/<tenant>``).
        grids: optional per-replica process grids (length
            ``n_replicas``).
    """

    def __init__(
        self,
        machine: MachineConfig,
        matrices: Dict[str, COOMatrix],
        policy: Optional[ServePolicy] = None,
        resilience: Optional[ResiliencePolicy] = None,
        faults: Optional[FaultConfig] = None,
        stripe_width: Optional[int] = None,
        coeffs: Optional[CostCoefficients] = None,
        plan_cache: PlanCacheLike = AUTO,
        grids: Optional[Sequence] = None,
    ):
        self.policy = policy if policy is not None else ServePolicy()
        self.resilience = (
            resilience if resilience is not None else ResiliencePolicy()
        )
        if faults is None:
            faults = machine.faults
        self.faults = faults
        self.stripe_width = stripe_width
        self.coeffs = coeffs
        # The router owns group keys, tuned grids, and the shared plan
        # cache; it never executes (its machine is fault-free).
        self._router = ServeScheduler(
            replace(machine, faults=None), matrices, policy=self.policy,
            stripe_width=stripe_width, coeffs=coeffs,
            plan_cache=plan_cache,
        )
        self.replicas = ReplicaSet(
            replace(machine, faults=None), self.resilience.n_replicas,
            faults, self.resilience, grids=grids,
        )
        self.balancer = LoadBalancer(self.replicas)

    # ------------------------------------------------------------------
    def _engine_for(self, rep: Replica, key: Tuple,
                    lead: ServeRequest) -> DistSpMMEngine:
        """The replica's engine for one request group (lazy).

        Pinned exactly like the single-executor path
        (``classify_k`` or the group lead's width), so every replica —
        and the fault-free baseline — accumulates ``C`` in the same
        order and completed slices are byte-identical.
        """
        engine = rep.engines.get(key)
        if engine is None:
            pin = self.policy.classify_k
            engine = DistSpMMEngine(
                self._router.matrices[lead.matrix],
                rep.machine,
                stripe_width=self.stripe_width,
                coeffs=self.coeffs,
                plan_cache=None,
                classify_k=pin if pin is not None else lead.k,
                grid=(
                    rep.grid if rep.grid is not None
                    else self._router._group_grids.get(key)
                ),
            )
            rep.engines[key] = engine
        return engine

    def _cached_widths(self, key: Tuple) -> set:
        """Fused widths some replica already holds a plan for."""
        widths: set = set()
        for rep in self.replicas:
            engine = rep.engines.get(key)
            if engine is not None:
                widths.update(engine._plans)
        return widths

    # ------------------------------------------------------------------
    def serve(self, requests: Sequence[ServeRequest],
              fuse: bool = True) -> ResilienceReport:
        """Replay ``requests`` through the replicated event loop."""
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("request ids must be unique")
        pending = sorted(requests, key=lambda r: (r.arrival, r.request_id))
        queues: Dict[Tuple, List[ServeRequest]] = {}
        outcomes: Dict[int, ServeOutcome] = {}
        report = ResilienceReport(fused=fuse)
        state = {"queued": 0, "idx": 0, "batch_id": 0}

        def admit_until(t: float) -> None:
            while (
                state["idx"] < len(pending)
                and pending[state["idx"]].arrival <= t
            ):
                req = pending[state["idx"]]
                state["idx"] += 1
                if state["queued"] >= self.policy.max_queue_depth:
                    outcomes[req.request_id] = ServeOutcome(
                        request_id=req.request_id,
                        tenant=req.tenant,
                        matrix=req.matrix,
                        status=REJECTED,
                        completion=req.arrival,
                        reject_reason=RejectReason.QUEUE_FULL,
                    )
                    continue
                queues.setdefault(
                    self._router._group_key(req), []
                ).append(req)
                state["queued"] += 1
                report.peak_queue_depth = max(
                    report.peak_queue_depth, state["queued"]
                )
                self._shed(req.arrival, queues, outcomes, state, report)

        def ready_at(queue: List[ServeRequest]) -> float:
            first = queue[0]
            if not fuse:
                return first.arrival
            cum = 0
            for req in queue:
                if cum and cum + req.k > self.policy.max_fused_k:
                    return req.arrival
                cum += req.k
                if cum >= self.policy.max_fused_k:
                    return req.arrival
            if state["idx"] >= len(pending):
                return queue[-1].arrival
            return first.arrival + self.policy.max_batch_delay

        def select() -> Tuple[Tuple, float]:
            free = min(rep.free_at for rep in self.replicas)
            best_key = None
            best = (float("inf"), -1)
            for key, queue in queues.items():
                t = max(ready_at(queue), free)
                cand = (t, queue[0].request_id)
                if best_key is None or cand < best:
                    best_key, best = key, cand
            assert best_key is not None
            return best_key, best[0]

        while state["idx"] < len(pending) or state["queued"]:
            if state["queued"] == 0:
                admit_until(pending[state["idx"]].arrival)
                continue
            while True:
                key, t = select()
                if (
                    state["idx"] < len(pending)
                    and pending[state["idx"]].arrival <= t
                ):
                    admit_until(t)
                    continue
                break
            self._dispatch(key, t, fuse, queues, outcomes, state, report)

        report.outcomes = [outcomes[i] for i in sorted(outcomes)]
        for rep in self.replicas:
            report.replica_stats[rep.rid] = rep.describe()
            report.breaker_opens += rep.breaker.opens
            report.probes += rep.stats.probes
        return report

    # ------------------------------------------------------------------
    def _shed(self, t: float, queues, outcomes, state, report) -> None:
        """Drop lowest-priority queued work once pressure crosses the
        shed threshold (latest arrival first within a priority class;
        ``protect_priority`` work is never shed)."""
        limit = self.policy.max_queue_depth * (
            self.resilience.shed_queue_fraction
        )
        while state["queued"] > limit:
            victim_key = None
            victim = None
            for key, queue in queues.items():
                for req in queue:
                    if req.priority >= self.resilience.protect_priority:
                        continue
                    better = victim is None or (
                        (req.priority, -req.arrival, -req.request_id)
                        < (victim.priority, -victim.arrival,
                           -victim.request_id)
                    )
                    if better:
                        victim_key, victim = key, req
            if victim is None:
                return
            queues[victim_key].remove(victim)
            if not queues[victim_key]:
                del queues[victim_key]
            state["queued"] -= 1
            report.shed += 1
            outcomes[victim.request_id] = ServeOutcome(
                request_id=victim.request_id,
                tenant=victim.tenant,
                matrix=victim.matrix,
                status=REJECTED,
                completion=t,
                reject_reason=RejectReason.SHED,
            )

    # ------------------------------------------------------------------
    def _attempt(self, rep: Replica, key: Tuple, lead: ServeRequest,
                 B: np.ndarray, start: float,
                 report: ResilienceReport):
        """Run one dispatch attempt on ``rep`` starting at ``start``.

        Returns ``(ok, charged, C, kind, completion)``; the replica's
        clock, stats, EWMAs, and breaker are all updated here.
        """
        res = self.resilience
        epoch = rep.next_epoch
        rep.next_epoch += 1
        engine = self._engine_for(rep, key, lead)
        cache = self._router.tenant_cache(
            f"replica{rep.rid}/{lead.tenant}"
        )
        before = resilience_stats().snapshot()
        C = None
        try:
            C, seconds = engine.multiply(
                B, plan_cache=cache, machine=rep.machine_for_epoch(epoch)
            )
        except ExecutorCrashError:
            ok, charged, kind = False, res.crash_detect_seconds, CRASH
            rep.stats.crashes += 1
            report.crashes += 1
        except ReproError:
            ok, charged, kind = False, 0.0, ERROR
        else:
            if res.timeout is not None and seconds > res.timeout:
                ok, charged, kind = False, res.timeout, TIMEOUT
                C = None
                rep.stats.timeouts += 1
                report.timeouts += 1
            else:
                ok, charged, kind = True, seconds, OK
        after = resilience_stats().snapshot()
        rep.stats.rget_failures += after[0] - before[0]
        rep.stats.rget_retries += after[1] - before[1]
        rep.stats.lane_fallbacks += after[3] - before[3]
        rep.free_at = start + charged
        completion = rep.free_at
        rep.stats.dispatches += 1
        rep.stats.busy_seconds += charged
        if ok:
            rep.stats.successes += 1
            rep.observe_latency(charged, res.ewma_alpha)
            self.replicas.observe_fleet(charged)
        else:
            rep.stats.failures += 1
        rep.breaker.record(completion, ok)
        rep.breaker.check_drift(
            completion, rep.latency_ewma, self.replicas.fleet_ewma
        )
        return ok, charged, C, kind, completion

    def _dispatch(self, key: Tuple, t: float, fuse: bool, queues,
                  outcomes, state, report: ResilienceReport) -> None:
        """Route one group dispatch: degrade, balance, hedge, retry."""
        res = self.resilience
        self.replicas.run_probes(t)
        queue = queues[key]

        # Degradation ladder: under pressure prefer a fused width whose
        # plan is already cached; failing that, halve the K-panel cap.
        cap = self.policy.max_fused_k
        degraded = None
        if fuse and len(queue) > 1:
            pressure = state["queued"] / self.policy.max_queue_depth
            if pressure >= res.degrade_queue_fraction:
                widths, cum = [], 0
                for req in queue:
                    if cum and cum + req.k > cap:
                        break
                    cum += req.k
                    widths.append(cum)
                full = widths[-1]
                cached = self._cached_widths(key)
                if full not in cached:
                    stale = max(
                        (w for w in widths[:-1] if w in cached),
                        default=None,
                    )
                    if stale is not None:
                        cap, degraded = stale, "stale_plan"
                    else:
                        cap = max(queue[0].k, cap // 2)
                        if cap < full:
                            degraded = "k_panel"

        batch: List[ServeRequest] = []
        fused_k = 0
        for req in queue:
            if batch and (not fuse or fused_k + req.k > cap):
                break
            batch.append(req)
            fused_k += req.k
            if not fuse:
                break
        del queue[: len(batch)]
        if not queue:
            del queues[key]
        state["queued"] -= len(batch)

        lead = batch[0]
        if len(batch) == 1:
            B = lead.B
        else:
            B = np.concatenate([r.B for r in batch], axis=1)
        batch_id = int(state["batch_id"])
        state["batch_id"] += 1
        if degraded is not None:
            report.degraded_dispatches += 1

        # --- primary attempt -----------------------------------------
        tried: List[int] = []
        order = self.balancer.order(t)
        primary = order[0]
        tried.append(primary.rid)
        ok, charged, C, kind, comp = self._attempt(
            primary, key, lead, B, max(primary.free_at, t), report,
        )
        attempts = 1
        hedged = False
        winner: Optional[Replica] = primary if ok else None
        completion = comp
        last_failure = comp

        # --- hedge ----------------------------------------------------
        if (
            res.hedge_delay is not None
            and len(self.replicas) > 1
            and (not ok or comp > t + res.hedge_delay)
            and attempts <= res.max_retries
        ):
            backup = self.balancer.order(
                t + res.hedge_delay, exclude=tuple(tried)
            )[0]
            if backup.rid != primary.rid:
                tried.append(backup.rid)
                bok, bcharged, bC, bkind, bcomp = self._attempt(
                    backup, key, lead, B,
                    max(backup.free_at, t + res.hedge_delay), report,
                )
                attempts += 1
                hedged = True
                report.hedges += 1
                if ok and bok:
                    if bcomp < comp:
                        winner, C, completion = backup, bC, bcomp
                        report.hedge_wins += 1
                        report.hedge_wasted_seconds += charged
                    else:
                        report.hedge_wasted_seconds += bcharged
                elif bok:
                    winner, C, completion = backup, bC, bcomp
                    report.hedge_wins += 1
                elif ok:
                    report.hedge_wasted_seconds += bcharged
                    last_failure = max(last_failure, bcomp)
                else:
                    report.hedge_wasted_seconds += charged + bcharged
                    last_failure = max(last_failure, bcomp)

        # --- retry-with-backoff --------------------------------------
        retry_index = 0
        while winner is None and attempts <= res.max_retries:
            retry_index += 1
            backoff = res.retry_backoff_base * (2 ** (retry_index - 1))
            earliest = last_failure + backoff
            rep = self.balancer.order(earliest, exclude=tuple(tried))[0]
            if rep.rid not in tried:
                tried.append(rep.rid)
            ok, charged, C, kind, comp = self._attempt(
                rep, key, lead, B, max(rep.free_at, earliest), report,
            )
            attempts += 1
            report.retries += 1
            if ok:
                winner, completion = rep, comp
            else:
                last_failure = comp

        # --- record outcomes -----------------------------------------
        status = DONE if winner is not None else FAILED
        report.routing_trace.append((
            batch_id, winner.rid if winner is not None else -1,
            attempts, hedged, status,
        ))
        if winner is None:
            completion = last_failure
        offset = 0
        for req in batch:
            piece = None
            if winner is not None:
                piece = np.ascontiguousarray(
                    C[:, offset:offset + req.k]
                )
            offset += req.k
            outcomes[req.request_id] = ServeOutcome(
                request_id=req.request_id,
                tenant=req.tenant,
                matrix=req.matrix,
                status=status,
                batch_id=batch_id,
                fused_k=fused_k,
                dispatched=t,
                completion=completion,
                latency=completion - req.arrival,
                deadline_missed=(
                    req.deadline is not None
                    and completion > req.deadline
                ),
                replica=winner.rid if winner is not None else None,
                attempts=attempts,
                hedged=hedged,
                degraded=degraded,
                C=piece,
            )
        report.batches.append(
            BatchRecord(
                batch_id, lead.matrix, tuple(r.tenant for r in batch),
                t, fused_k, len(batch),
                completion - t if winner is not None else 0.0,
            )
        )
