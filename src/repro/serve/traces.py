"""Synthetic request traces for the serving layer.

Three arrival patterns, all generated from a seeded
``np.random.default_rng`` so a (kind, seed, parameters) triple replays
bit-identically — including every request's dense block:

* :func:`bursty_trace` — tight bursts separated by idle gaps, the
  pattern K-panel fusion exploits best (a burst against one matrix
  fuses into one wide SpMM).
* :func:`diurnal_trace` — a smooth sinusoidal rate, peak-and-trough
  like a day of traffic.
* :func:`hot_matrix_trace` — bursty arrivals with a skewed matrix
  popularity (one hot matrix takes most requests), the acceptance
  scenario of BENCH_PR6.

Traces reference matrices by suite name; the caller supplies the loaded
:class:`~repro.sparse.coo.COOMatrix` objects (so trace generation and
matrix generation stay independently seeded).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..sparse.coo import COOMatrix
from .request import ServeRequest

#: Default tenant population.
DEFAULT_TENANTS = ("tenant-a", "tenant-b", "tenant-c")

#: Trace kinds accepted by :func:`make_trace` (and ``repro serve``).
TRACE_KINDS = ("bursty", "diurnal", "hot")


def _check(matrices: Dict[str, COOMatrix], n_requests: int, k: int) -> None:
    if not matrices:
        raise ConfigurationError("a trace needs at least one matrix")
    if n_requests < 1:
        raise ConfigurationError(f"n_requests must be >= 1: {n_requests}")
    if k < 1:
        raise ConfigurationError(f"request width k must be >= 1: {k}")


def _finish(
    matrices: Dict[str, COOMatrix],
    arrivals: List[float],
    picks: List[str],
    tenants: Sequence[str],
    k: int,
    rng: np.random.Generator,
    deadline_slack: Optional[float],
) -> List[ServeRequest]:
    """Assemble requests: ids in arrival order, seeded per-request B."""
    requests = []
    for i, (arrival, name) in enumerate(zip(arrivals, picks)):
        cols = matrices[name].shape[1]
        requests.append(
            ServeRequest(
                request_id=i,
                tenant=tenants[int(rng.integers(len(tenants)))],
                matrix=name,
                B=rng.standard_normal((cols, k)),
                arrival=arrival,
                deadline=(
                    None if deadline_slack is None
                    else arrival + deadline_slack
                ),
            )
        )
    return requests


def bursty_trace(
    matrices: Dict[str, COOMatrix],
    n_requests: int = 48,
    k: int = 8,
    tenants: Sequence[str] = DEFAULT_TENANTS,
    seed: int = 7,
    burst_size: int = 8,
    burst_gap: float = 0.5,
    intra_gap: float = 1e-4,
    deadline_slack: Optional[float] = None,
) -> List[ServeRequest]:
    """Bursts of ``burst_size`` back-to-back requests, idle in between.

    Matrices are drawn uniformly per request, so mixed-matrix bursts
    exercise the scheduler's per-group queues.
    """
    _check(matrices, n_requests, k)
    if burst_size < 1:
        raise ConfigurationError(f"burst_size must be >= 1: {burst_size}")
    rng = np.random.default_rng(seed)
    names = sorted(matrices)
    arrivals: List[float] = []
    picks: List[str] = []
    t = 0.0
    while len(arrivals) < n_requests:
        for _ in range(min(burst_size, n_requests - len(arrivals))):
            arrivals.append(t + float(rng.uniform(0.0, intra_gap)))
            picks.append(names[int(rng.integers(len(names)))])
        t += burst_gap
    order = np.argsort(arrivals, kind="stable")
    arrivals = [arrivals[i] for i in order]
    picks = [picks[i] for i in order]
    return _finish(matrices, arrivals, picks, tenants, k, rng,
                   deadline_slack)


def diurnal_trace(
    matrices: Dict[str, COOMatrix],
    n_requests: int = 48,
    k: int = 8,
    tenants: Sequence[str] = DEFAULT_TENANTS,
    seed: int = 7,
    base_gap: float = 0.05,
    period: float = 10.0,
    amplitude: float = 0.9,
    deadline_slack: Optional[float] = None,
) -> List[ServeRequest]:
    """A smooth peak-and-trough arrival rate (sinusoidal, period long
    relative to the gaps).

    Inter-arrival gaps stretch when the instantaneous rate is low
    (``amplitude`` -> 1 makes the trough nearly silent) and compress at
    the peak, where fusion opportunities concentrate.
    """
    _check(matrices, n_requests, k)
    if not 0.0 <= amplitude < 1.0:
        raise ConfigurationError(
            f"amplitude must be in [0, 1): {amplitude}"
        )
    rng = np.random.default_rng(seed)
    names = sorted(matrices)
    arrivals = []
    picks = []
    t = 0.0
    for _ in range(n_requests):
        rate = 1.0 + amplitude * np.sin(2.0 * np.pi * t / period)
        rate = max(rate, 1.0 - amplitude)
        t += float(rng.exponential(base_gap / rate))
        arrivals.append(t)
        picks.append(names[int(rng.integers(len(names)))])
    return _finish(matrices, arrivals, picks, tenants, k, rng,
                   deadline_slack)


def hot_matrix_trace(
    matrices: Dict[str, COOMatrix],
    n_requests: int = 48,
    k: int = 8,
    tenants: Sequence[str] = DEFAULT_TENANTS,
    seed: int = 7,
    hot: Optional[str] = None,
    hot_fraction: float = 0.85,
    burst_size: int = 8,
    burst_gap: float = 0.5,
    intra_gap: float = 1e-4,
    deadline_slack: Optional[float] = None,
) -> List[ServeRequest]:
    """Bursty arrivals with a skewed matrix popularity.

    ``hot`` (default: the alphabetically first matrix) receives
    ``hot_fraction`` of the requests; the rest spread uniformly over
    the other matrices.  This is the serving scenario where fusion pays
    most: bursts against the hot matrix collapse into single wide
    K-panels.
    """
    _check(matrices, n_requests, k)
    if not 0.0 < hot_fraction <= 1.0:
        raise ConfigurationError(
            f"hot_fraction must be in (0, 1]: {hot_fraction}"
        )
    names = sorted(matrices)
    hot = hot if hot is not None else names[0]
    if hot not in matrices:
        raise ConfigurationError(f"hot matrix {hot!r} not in trace set")
    cold = [n for n in names if n != hot] or [hot]
    rng = np.random.default_rng(seed)
    arrivals = []
    picks = []
    t = 0.0
    while len(arrivals) < n_requests:
        for _ in range(min(burst_size, n_requests - len(arrivals))):
            arrivals.append(t + float(rng.uniform(0.0, intra_gap)))
            if float(rng.uniform()) < hot_fraction:
                picks.append(hot)
            else:
                picks.append(cold[int(rng.integers(len(cold)))])
        t += burst_gap
    order = np.argsort(arrivals, kind="stable")
    arrivals = [arrivals[i] for i in order]
    picks = [picks[i] for i in order]
    return _finish(matrices, arrivals, picks, tenants, k, rng,
                   deadline_slack)


def make_trace(kind: str, matrices: Dict[str, COOMatrix], **kwargs):
    """Dispatch on trace ``kind`` (one of :data:`TRACE_KINDS`)."""
    makers = {
        "bursty": bursty_trace,
        "diurnal": diurnal_trace,
        "hot": hot_matrix_trace,
    }
    if kind not in makers:
        raise ConfigurationError(
            f"unknown trace kind {kind!r}; pick one of {TRACE_KINDS}"
        )
    return makers[kind](matrices, **kwargs)
