"""Distributed data structures under 1D row partitioning."""

from .matrices import DistDenseMatrix, DistSparseMatrix
from .oned import RowPartition

__all__ = ["DistDenseMatrix", "DistSparseMatrix", "RowPartition"]
