"""Distributed data structures and process-grid layouts."""

from .grid import (
    Grid1D,
    Grid2D,
    Grid15D,
    ProcessGrid,
    enumerate_grids,
    make_grid,
    square_factors,
)
from .matrices import DistDenseMatrix, DistSparseMatrix
from .oned import RowPartition

__all__ = [
    "DistDenseMatrix",
    "DistSparseMatrix",
    "Grid15D",
    "Grid1D",
    "Grid2D",
    "ProcessGrid",
    "RowPartition",
    "enumerate_grids",
    "make_grid",
    "square_factors",
]
