"""Distributed dense and sparse matrices under 1D partitioning.

A :class:`DistDenseMatrix` keeps one contiguous global array plus a
:class:`~repro.dist.oned.RowPartition`; per-rank blocks are views.  A
:class:`DistSparseMatrix` stores each rank's row slab of ``A`` as a
standalone, row-rebased :class:`~repro.sparse.coo.COOMatrix`.

Constructing either against a :class:`~repro.cluster.machine.Cluster`
charges each node's memory ledger for its resident slab, so persistent
data participates in the OOM accounting.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..cluster.machine import Cluster
from ..errors import PartitionError, ShapeError
from ..sparse.coo import COOMatrix
from .oned import RowPartition


def _validate_populated(partition: RowPartition, shape, what: str) -> None:
    """Reject partitions that would leave ranks without any rows.

    ``RowPartition`` itself tolerates over-split partitions (some of
    its callers slice empty ranges on purpose), but a *distributed
    matrix* with empty ranks is always a configuration mistake: those
    ranks would silently contribute nothing to the computation.  The
    split is ``n_rows = n_parts * base + extra`` with the first
    ``extra`` ranks one row larger — an uneven remainder is fine, a
    zero ``base`` is not.
    """
    base, extra = divmod(partition.n_rows, partition.n_parts)
    if base == 0 and extra < partition.n_parts:
        raise PartitionError(
            f"{what} of shape {tuple(shape)} cannot be split into "
            f"{partition.n_parts} row blocks: only {partition.n_rows} "
            f"rows (base={base}, remainder={extra}), so "
            f"{partition.n_parts - extra} ranks would own no rows"
        )


class DistDenseMatrix:
    """A dense matrix split into contiguous row blocks, one per rank."""

    def __init__(
        self,
        data: np.ndarray,
        partition: RowPartition,
        cluster: Optional[Cluster] = None,
        label: str = "dense",
    ):
        data = np.ascontiguousarray(data, dtype=np.float64)
        if data.ndim != 2:
            raise ShapeError(f"dense matrix must be 2-D, got {data.ndim}-D")
        if data.shape[0] != partition.n_rows:
            raise PartitionError(
                f"matrix has {data.shape[0]} rows but partition covers "
                f"{partition.n_rows}"
            )
        _validate_populated(partition, data.shape, "dense matrix")
        self.data = data
        self.partition = partition
        self.label = label
        if cluster is not None:
            if cluster.n_nodes != partition.n_parts:
                raise PartitionError(
                    f"cluster has {cluster.n_nodes} nodes but partition has "
                    f"{partition.n_parts} parts"
                )
            for rank in range(partition.n_parts):
                start, stop = partition.bounds(rank)
                nbytes = (stop - start) * data.shape[1] * data.itemsize
                cluster.node(rank).memory.allocate(label, int(nbytes))

    # ------------------------------------------------------------------
    @classmethod
    def zeros(
        cls,
        n_rows: int,
        n_cols: int,
        partition: RowPartition,
        cluster: Optional[Cluster] = None,
        label: str = "dense",
    ) -> "DistDenseMatrix":
        return cls(
            np.zeros((n_rows, n_cols)), partition, cluster, label=label
        )

    @property
    def shape(self):
        return self.data.shape

    @property
    def k(self) -> int:
        """Number of dense columns (the paper's K)."""
        return self.data.shape[1]

    def block(self, rank: int) -> np.ndarray:
        """Writable view of the rows owned by ``rank``."""
        start, stop = self.partition.bounds(rank)
        return self.data[start:stop]

    def blocks(self) -> List[np.ndarray]:
        """All per-rank blocks, rank order."""
        return [self.block(r) for r in range(self.partition.n_parts)]

    def block_nbytes(self, rank: int) -> int:
        """Bytes of the block owned by ``rank``."""
        return int(
            self.partition.size(rank) * self.data.shape[1]
            * self.data.itemsize
        )

    def copy_zeros_like(
        self, cluster: Optional[Cluster] = None, label: str = "dense"
    ) -> "DistDenseMatrix":
        """Same shape/partition, zero-filled (e.g. the output ``C``)."""
        return DistDenseMatrix(
            np.zeros_like(self.data), self.partition, cluster, label=label
        )


class DistSparseMatrix:
    """A sparse matrix split into per-rank row slabs (rebased COO)."""

    def __init__(
        self,
        global_matrix: COOMatrix,
        partition: RowPartition,
        cluster: Optional[Cluster] = None,
        label: str = "A_slab",
    ):
        if global_matrix.shape[0] != partition.n_rows:
            raise PartitionError(
                f"A has {global_matrix.shape[0]} rows but partition covers "
                f"{partition.n_rows}"
            )
        _validate_populated(partition, global_matrix.shape, "sparse matrix")
        self.global_matrix = global_matrix
        self.partition = partition
        self.slabs: List[COOMatrix] = []
        for rank in range(partition.n_parts):
            start, stop = partition.bounds(rank)
            slab = global_matrix.row_slab(start, stop)
            self.slabs.append(slab)
            if cluster is not None:
                cluster.node(rank).memory.allocate(label, slab.nbytes())

    @property
    def shape(self):
        return self.global_matrix.shape

    @property
    def nnz(self) -> int:
        return self.global_matrix.nnz

    def slab(self, rank: int) -> COOMatrix:
        """The row-rebased slab owned by ``rank``."""
        if not 0 <= rank < self.partition.n_parts:
            raise PartitionError(f"rank {rank} out of range")
        return self.slabs[rank]

    def slab_nnz(self) -> List[int]:
        """Nonzeros per rank (load-balance diagnostics)."""
        return [slab.nnz for slab in self.slabs]
