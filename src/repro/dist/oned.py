"""1D row partitioning (paper §2.2).

Each of the ``p`` nodes owns a contiguous slab of rows of the sparse
matrix ``A`` and the matching row slabs of the dense matrices ``B`` and
``C``.  Accesses to ``B`` rows outside a node's slab are the only remote
accesses in the whole computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import PartitionError


@dataclass(frozen=True)
class RowPartition:
    """A balanced contiguous partition of ``n_rows`` across ``n_parts``.

    The first ``n_rows % n_parts`` parts get one extra row, matching the
    usual block distribution of MPI codes.
    """

    n_rows: int
    n_parts: int

    def __post_init__(self) -> None:
        if self.n_rows < 0:
            raise PartitionError(f"n_rows must be non-negative: {self.n_rows}")
        if self.n_parts <= 0:
            raise PartitionError(f"n_parts must be positive: {self.n_parts}")

    # ------------------------------------------------------------------
    def bounds(self, part: int) -> Tuple[int, int]:
        """Half-open row range ``[start, stop)`` owned by ``part``."""
        if not 0 <= part < self.n_parts:
            raise PartitionError(
                f"part {part} out of range 0..{self.n_parts - 1}"
            )
        base, extra = divmod(self.n_rows, self.n_parts)
        start = part * base + min(part, extra)
        stop = start + base + (1 if part < extra else 0)
        return start, stop

    def size(self, part: int) -> int:
        """Rows owned by ``part``."""
        start, stop = self.bounds(part)
        return stop - start

    def max_size(self) -> int:
        """Largest slab across parts (block-buffer sizing)."""
        return self.size(0) if self.n_parts else 0

    def all_bounds(self) -> List[Tuple[int, int]]:
        """Bounds of every part, in rank order."""
        return [self.bounds(p) for p in range(self.n_parts)]

    # ------------------------------------------------------------------
    def owner_of(self, row: int) -> int:
        """Part that owns global ``row``."""
        if not 0 <= row < self.n_rows:
            raise PartitionError(f"row {row} outside 0..{self.n_rows - 1}")
        base, extra = divmod(self.n_rows, self.n_parts)
        boundary = extra * (base + 1)
        if row < boundary:
            return row // (base + 1)
        if base == 0:
            raise PartitionError(
                f"row {row} beyond the populated parts of an over-split "
                f"partition ({self.n_rows} rows, {self.n_parts} parts)"
            )
        return extra + (row - boundary) // base

    def owners_of(self, rows: np.ndarray) -> np.ndarray:
        """Vectorised :meth:`owner_of`."""
        rows = np.asarray(rows, dtype=np.int64)
        if len(rows) and (rows.min() < 0 or rows.max() >= self.n_rows):
            raise PartitionError("row index outside the partitioned range")
        base, extra = divmod(self.n_rows, self.n_parts)
        boundary = extra * (base + 1)
        owners = np.empty(len(rows), dtype=np.int64)
        low = rows < boundary
        owners[low] = rows[low] // (base + 1)
        if base:
            owners[~low] = extra + (rows[~low] - boundary) // base
        elif np.any(~low):
            raise PartitionError("row beyond populated parts")
        return owners
