"""Process-grid layouts for distributed SpMM (1D / 1.5D / 2D).

The paper's Two-Face algorithm is presented on a 1D row-block
distribution: every rank owns a row slab of ``A`` and the matching block
of ``B``, and (collectively or one-sidedly) fetches the remaining
``~|B|`` bytes it needs.  Bharadwaj, Buluc & Demmel ("Distributed-Memory
Sparse Kernels for Machine Learning", PAPERS.md) show that replicated
1.5D and 2D grid variants move asymptotically less data per rank as the
node count grows:

* ``Grid1D``  — p ranks in a row; per-rank dense traffic ``~|B|``.
* ``Grid15D`` — a ``p_r x c`` grid: ``A`` stays row-blocked across the
  ``p_r`` layer ranks while the dense rows of ``B`` are split
  block-cyclically over the ``c`` depth fibers; each fiber computes a
  partial ``C`` from its ``1/c`` of the columns and the fibers
  allreduce.  Per-rank traffic ``~|B|/c + 2 |C_i| (c-1)/c``.
* ``Grid2D``  — a ``p_r x p_c`` grid: ``A`` is blocked on the grid
  (each grid column owns a contiguous ``1/p_c`` of the columns of
  ``A``), ``B`` is partitioned along grid columns, and partial outputs
  are reduced across each grid row.  Per-rank traffic
  ``~|B|/p_c + 2 |C_i| (p_c-1)/p_c``.

A layout answers three purely geometric questions the grid runner
(:mod:`repro.algorithms.gridrun`) needs:

1. which global ranks form each *layer* (the sub-communicator that runs
   an unchanged 1D sub-problem),
2. which dense rows of ``B`` (equivalently, columns of ``A``) each
   layer owns, and
3. which global ranks form each *reduce group* (the ranks holding
   partials of the same ``C`` row block, reduced over the grid's depth
   dimension).

Global ranks are numbered layer-major: layer ``g`` owns the contiguous
ranks ``[g * p_r, (g + 1) * p_r)``, and rank ``g * p_r + i`` holds row
block ``i``.  Reduce group ``i`` is therefore ``{g * p_r + i : g}``.

``Grid1D`` is pure bookkeeping — algorithms run the exact pre-grid code
path and produce byte-identical results (output, simulated seconds,
traffic events).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, List, Optional

import numpy as np

from ..errors import PartitionError
from .oned import RowPartition


class ProcessGrid:
    """Base class of the grid layouts (shared geometry helpers).

    Subclasses define ``p_r`` (ranks per layer, i.e. row blocks of
    ``A``/``C``), ``depth`` (number of layers: ``1`` for 1D, ``c`` for
    1.5D, ``p_c`` for 2D) and ``n_nodes = p_r * depth``.
    """

    #: Layout tag ("1d", "1.5d", "2d"); also the CLI spelling.
    layout: ClassVar[str] = "abstract"
    #: Telemetry dimension charged for intra-layer (dense input) traffic.
    intra_dim: ClassVar[str] = "row"
    #: Telemetry dimension charged for the partial-``C`` reduction
    #: (None when the layout has no reduction, i.e. 1D).
    reduce_dim: ClassVar[Optional[str]] = None

    # -- geometry ------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        return self.p_r * self.depth  # type: ignore[attr-defined]

    def validate_nodes(self, n_nodes: int) -> None:
        """Raise unless the machine's node count matches the grid."""
        if n_nodes != self.n_nodes:
            raise PartitionError(
                f"machine has {n_nodes} nodes but grid "
                f"{self.describe()['shape']} needs {self.n_nodes}"
            )

    def layer_ranks(self, layer: int) -> List[int]:
        """Global ranks of one layer (a 1D sub-communicator)."""
        if not 0 <= layer < self.depth:
            raise PartitionError(
                f"layer {layer} out of range for depth {self.depth}"
            )
        base = layer * self.p_r
        return list(range(base, base + self.p_r))

    def reduce_groups(self) -> List[List[int]]:
        """Global ranks holding partials of each ``C`` row block.

        Entry ``i`` lists, in layer order, the ranks whose partial
        ``C`` contains row block ``i``; the grid runner charges one
        allreduce per group.  Degenerate (depth-1) grids reduce
        nothing, so the list is empty.
        """
        if self.depth <= 1:
            return []
        return [
            [g * self.p_r + i for g in range(self.depth)]
            for i in range(self.p_r)
        ]

    def layer_col_ids(self, layer: int, n_cols: int) -> np.ndarray:
        """Sorted global column ids of ``A`` owned by ``layer``."""
        raise NotImplementedError

    # -- identity ------------------------------------------------------
    def cache_token(self) -> str:
        """Stable token naming this layout in plan-cache keys."""
        raise NotImplementedError

    def describe(self) -> dict:
        """JSON-ready summary (telemetry / result extras)."""
        return {
            "layout": self.layout,
            "shape": self.cache_token(),
            "n_nodes": self.n_nodes,
            "p_r": self.p_r,
            "depth": self.depth,
        }


@dataclass(frozen=True)
class Grid1D(ProcessGrid):
    """The paper's layout: ``p`` ranks in a row, no depth dimension.

    Running with ``grid=Grid1D(p)`` (or ``grid=None``) takes the exact
    pre-grid code path — output, simulated seconds, and traffic events
    are byte-identical to a run without a grid argument.
    """

    nodes: int

    layout: ClassVar[str] = "1d"
    intra_dim: ClassVar[str] = "row"
    reduce_dim: ClassVar[Optional[str]] = None

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise PartitionError(
                f"Grid1D needs at least 1 node, got {self.nodes}"
            )

    @property
    def p_r(self) -> int:
        return self.nodes

    @property
    def depth(self) -> int:
        return 1

    def layer_col_ids(self, layer: int, n_cols: int) -> np.ndarray:
        if layer != 0:
            raise PartitionError(f"Grid1D has one layer, got {layer}")
        return np.arange(n_cols, dtype=np.int64)

    def cache_token(self) -> str:
        return "1d"


@dataclass(frozen=True)
class Grid15D(ProcessGrid):
    """1.5D layout: row-blocked ``A``, ``B`` block-cyclic over fibers.

    ``A``'s rows are blocked over the ``p_r`` layer ranks exactly as in
    1D.  The dense rows of ``B`` are first split into ``p_r`` blocks
    (the 1D ownership blocks) and block ``j`` is assigned to depth
    fiber ``j mod c`` — the replication-group schedule of the 1.5D
    algorithm.  Fiber ``f`` computes a partial ``C`` from its blocks
    and the ``c`` fibers allreduce each row block of ``C``.

    Args:
        p_r: ranks per fiber (row blocks of ``A``).
        c: replication factor (number of depth fibers).
    """

    p_r: int
    c: int

    layout: ClassVar[str] = "1.5d"
    intra_dim: ClassVar[str] = "row"
    reduce_dim: ClassVar[Optional[str]] = "fiber"

    def __post_init__(self) -> None:
        if self.p_r < 1 or self.c < 1:
            raise PartitionError(
                f"Grid15D needs positive p_r and c, got "
                f"p_r={self.p_r}, c={self.c}"
            )
        if self.c > self.p_r:
            raise PartitionError(
                f"Grid15D replication c={self.c} exceeds p_r={self.p_r}: "
                "a fiber would own no dense blocks"
            )

    @property
    def depth(self) -> int:
        return self.c

    def layer_col_ids(self, layer: int, n_cols: int) -> np.ndarray:
        if not 0 <= layer < self.c:
            raise PartitionError(
                f"fiber {layer} out of range for c={self.c}"
            )
        blocks = RowPartition(n_cols, self.p_r)
        spans = [
            blocks.bounds(j)
            for j in range(self.p_r)
            if j % self.c == layer
        ]
        parts = [
            np.arange(start, stop, dtype=np.int64) for start, stop in spans
        ]
        if not parts:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(parts)

    def cache_token(self) -> str:
        return f"1.5d:r{self.p_r}c{self.c}"


@dataclass(frozen=True)
class Grid2D(ProcessGrid):
    """2D layout: ``A`` blocked on a ``p_r x p_c`` grid.

    Each grid column (a layer of ``p_r`` ranks) owns a contiguous
    ``1/p_c`` slice of the columns of ``A`` and the matching rows of
    ``B``; within the layer, rows of ``A`` are blocked as in 1D.  The
    column groups each compute a partial ``C`` and the ``p_c`` members
    of every grid row allreduce their row block.
    """

    p_r: int
    p_c: int

    layout: ClassVar[str] = "2d"
    intra_dim: ClassVar[str] = "col"
    reduce_dim: ClassVar[Optional[str]] = "row"

    def __post_init__(self) -> None:
        if self.p_r < 1 or self.p_c < 1:
            raise PartitionError(
                f"Grid2D needs positive p_r and p_c, got "
                f"p_r={self.p_r}, p_c={self.p_c}"
            )

    @property
    def depth(self) -> int:
        return self.p_c

    def layer_col_ids(self, layer: int, n_cols: int) -> np.ndarray:
        if not 0 <= layer < self.p_c:
            raise PartitionError(
                f"grid column {layer} out of range for p_c={self.p_c}"
            )
        start, stop = RowPartition(n_cols, self.p_c).bounds(layer)
        return np.arange(start, stop, dtype=np.int64)

    def cache_token(self) -> str:
        return f"2d:r{self.p_r}x{self.p_c}"


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def square_factors(n_nodes: int) -> tuple:
    """The most-square ``(p_r, p_c)`` factorisation of ``n_nodes``.

    Returns the factor pair with ``p_r >= p_c`` and ``p_c`` the largest
    divisor not exceeding ``sqrt(n_nodes)`` — the default 2D shape.
    """
    if n_nodes < 1:
        raise PartitionError(f"need at least 1 node, got {n_nodes}")
    p_c = 1
    d = 1
    while d * d <= n_nodes:
        if n_nodes % d == 0:
            p_c = d
        d += 1
    return n_nodes // p_c, p_c


def make_grid(
    layout: str,
    n_nodes: int,
    p_r: Optional[int] = None,
    p_c: Optional[int] = None,
    c: Optional[int] = None,
) -> ProcessGrid:
    """Build a grid over ``n_nodes`` ranks from a layout name.

    Args:
        layout: ``"1d"``, ``"1.5d"``, or ``"2d"``.
        n_nodes: total simulated node count; must equal the grid's
            ``p_r * depth``.
        p_r / p_c: explicit 2D shape (either implies the other); the
            default is the most-square factorisation.
        c: 1.5D replication factor; the default is the ``p_c`` of the
            most-square factorisation (capped at ``p_r``).
    """
    if layout == "1d":
        return Grid1D(n_nodes)
    if layout == "1.5d":
        if c is None:
            rows, cols = square_factors(n_nodes)
            c = 1 if cols < 2 else cols
        if c < 1 or n_nodes % c != 0:
            raise PartitionError(
                f"replication c={c} does not divide {n_nodes} nodes"
            )
        if c == 1:
            return Grid1D(n_nodes)
        return Grid15D(p_r=n_nodes // c, c=c)
    if layout == "2d":
        if p_r is None and p_c is None:
            p_r, p_c = square_factors(n_nodes)
        elif p_r is None:
            if p_c < 1 or n_nodes % p_c != 0:
                raise PartitionError(
                    f"p_c={p_c} does not divide {n_nodes} nodes"
                )
            p_r = n_nodes // p_c
        elif p_c is None:
            if p_r < 1 or n_nodes % p_r != 0:
                raise PartitionError(
                    f"p_r={p_r} does not divide {n_nodes} nodes"
                )
            p_c = n_nodes // p_r
        if p_r * p_c != n_nodes:
            raise PartitionError(
                f"grid {p_r}x{p_c} does not cover {n_nodes} nodes"
            )
        if p_c == 1:
            return Grid1D(n_nodes)
        return Grid2D(p_r=p_r, p_c=p_c)
    raise PartitionError(
        f"unknown grid layout {layout!r} (expected 1d, 1.5d, or 2d)"
    )


def enumerate_grids(
    n_nodes: int,
    layouts: Optional[List[str]] = None,
    max_depth: Optional[int] = None,
) -> List[ProcessGrid]:
    """Every legal grid over ``n_nodes`` ranks, deduped by token.

    Enumerates the 1D grid, all 1.5D grids ``Grid15D(n/c, c)`` for
    divisors ``c`` of ``n_nodes`` with ``2 <= c <= p_r``, and all 2D
    grids ``Grid2D(n/p_c, p_c)`` for divisors ``p_c >= 2`` — the
    candidate space the autotuner ranks.  Degenerate factorisations
    normalise to ``Grid1D`` (via :func:`make_grid`) and are deduped by
    ``cache_token``, so every returned grid is a distinct geometry.

    Args:
        n_nodes: total simulated node count.
        layouts: restrict to these layout names (default: all three).
        max_depth: cap the depth dimension (``c`` / ``p_c``); useful to
            bound the candidate set for huge highly-composite counts.
    """
    if n_nodes < 1:
        raise PartitionError(f"need at least 1 node, got {n_nodes}")
    wanted = set(layouts) if layouts is not None else {"1d", "1.5d", "2d"}
    unknown = wanted - set(GRID_LAYOUT_CODES)
    if unknown:
        raise PartitionError(
            f"unknown grid layout(s) {sorted(unknown)!r} "
            "(expected 1d, 1.5d, or 2d)"
        )
    divisors = [d for d in range(2, n_nodes + 1) if n_nodes % d == 0]
    grids: List[ProcessGrid] = []
    seen = set()

    def add(grid: ProcessGrid) -> None:
        token = grid.cache_token()
        if token not in seen:
            seen.add(token)
            grids.append(grid)

    if "1d" in wanted:
        add(Grid1D(n_nodes))
    if "1.5d" in wanted:
        for c in divisors:
            if c > n_nodes // c:
                break
            if max_depth is not None and c > max_depth:
                break
            add(make_grid("1.5d", n_nodes, c=c))
    if "2d" in wanted:
        for p_c in divisors:
            if max_depth is not None and p_c > max_depth:
                break
            add(make_grid("2d", n_nodes, p_c=p_c))
    return grids


#: Stable layout codes used by the plan container (format v4).
GRID_LAYOUT_CODES = {"1d": 1, "1.5d": 2, "2d": 3}


def grid_to_code(grid: Optional[ProcessGrid]) -> tuple:
    """``(layout_code, p_r, depth)`` of a grid (None = 1D over p_r)."""
    if grid is None:
        raise PartitionError("grid_to_code needs a grid; resolve None first")
    return GRID_LAYOUT_CODES[grid.layout], grid.p_r, grid.depth


def grid_from_code(code: int, p_r: int, depth: int) -> ProcessGrid:
    """Inverse of :func:`grid_to_code` (plan deserialisation)."""
    if code == GRID_LAYOUT_CODES["1d"]:
        return Grid1D(p_r)
    if code == GRID_LAYOUT_CODES["1.5d"]:
        return Grid15D(p_r=p_r, c=depth)
    if code == GRID_LAYOUT_CODES["2d"]:
        return Grid2D(p_r=p_r, p_c=depth)
    raise PartitionError(f"unknown grid layout code {code}")
