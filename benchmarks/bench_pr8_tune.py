"""Autotuner telemetry: tuned vs static-1D vs oracle (``BENCH_PR8.json``).

Replays the PR7 grid-sweep regime through the cost-model autotuner
(DESIGN.md §10).  For every sweep cell the tuner picks an (algorithm,
layout) from the model alone; the exhaustive oracle then measures every
candidate and the tuner's pick is charged its regret against the
measured winner.  A serving-trace replay at 256 nodes compares
``auto_layout`` on vs off (static 1D) on simulated requests/sec.

Contracts asserted here:

* model-only decisions are within 10% simulated-seconds regret of the
  oracle on >= 90% of the sweep cells (the model mirrors the
  simulator's charging formulas, so the expected regret is 0);
* wherever the model does misrank, re-tuning with the top-2 probe
  reaches 0 regret;
* the serving replay with ``auto_layout`` on completes at least the
  static-1D requests/sec (strictly more when a layered grid wins the
  cell, as it does for Two-Face at p=256 on web/tiny).

The trajectory lands in ``BENCH_PR8.json`` at the repository root
(schema ``repro-perf/8``; see ``repro.bench.telemetry``).
"""

import os
import pathlib
import time

import numpy as np

from repro import MachineConfig
from repro.bench import PerfLog
from repro.dist.grid import make_grid
from repro.serve import ServePolicy, ServeScheduler, bursty_trace
from repro.sparse import suite
from repro.tune import DecisionCache, Tuner

from conftest import emit

REPO_ROOT = pathlib.Path(__file__).parent.parent

MATRIX_SIZE = "tiny"
ALGORITHMS = ("Allgather", "TwoFace")
REGRET_BOUND = 0.10
REGRET_SHARE_FLOOR = 0.90

#: (matrix, K, n_nodes) sweep cells.  The first row is the BENCH_PR7
#: acceptance cell; the rest widen the sample for the >=90% statistic.
SWEEP_CELLS = (
    ("web", 64, 256),
    ("web", 32, 256),
    ("web", 16, 256),
    ("web", 64, 64),
    ("web", 32, 64),
    ("queen", 64, 64),
    ("queen", 32, 64),
    ("kmer", 32, 64),
)

# Serving replay: k=64 requests at p=256 are the regime where
# Two-Face@1.5d beats the pinned 1d path by ~12% per multiply
# (BENCH_PR7), so auto_layout converts directly into requests/sec.
SERVE_MATRIX = "web"
SERVE_NODES = 256
SERVE_REQUESTS = 16
SERVE_K = 64
SERVE_MAX_FUSED_K = 64
SERVE_BURST_GAP = 0.01


def candidate_grids(n_nodes):
    """The PR7 layout set: 1D, 1.5D (c=4), most-square 2D."""
    return [
        make_grid("1d", n_nodes),
        make_grid("1.5d", n_nodes, c=4),
        make_grid("2d", n_nodes),
    ]


def run_sweep():
    cache = DecisionCache()
    cells = []
    for matrix_name, k, n_nodes in SWEEP_CELLS:
        A = suite.load(matrix_name, size=MATRIX_SIZE)
        machine = MachineConfig(n_nodes=n_nodes)
        grids = candidate_grids(n_nodes)
        tuner = Tuner(
            machine, algorithms=ALGORITHMS, grids=grids, cache=cache
        )
        started = time.perf_counter()
        decision = tuner.tune(A, k)
        tune_wall = time.perf_counter() - started

        # Exhaustive oracle: measure every feasible candidate.
        by_token = {g.cache_token(): g for g in grids}
        B = np.ones((A.shape[1], k))
        measured = {}
        for cand in decision.candidates:
            if not cand["feasible"]:
                continue
            algo = tuner.make_algorithm(cand["algorithm"])
            result = algo.run(
                A, B, machine, grid=by_token[cand["grid"]]
            )
            if not result.failed:
                label = f"{cand['algorithm']}@{cand['grid']}"
                measured[label] = result.seconds
        best_label = min(
            measured, key=lambda lab: (measured[lab], lab)
        )
        observed = measured[decision.label]
        regret = observed / measured[best_label] - 1.0
        tuner.record_run(decision, observed)

        static_label = "TwoFace@1d"
        probe_regret = None
        if regret > 0:
            # Model misranked: the top-2 probe must recover the winner.
            prober = Tuner(
                machine, algorithms=ALGORITHMS, grids=grids, probe=True
            )
            probed = prober.tune(A, k)
            probe_regret = (
                measured[probed.label] / measured[best_label] - 1.0
            )
        cells.append(
            {
                "matrix": matrix_name,
                "k": k,
                "n_nodes": n_nodes,
                "chosen": decision.label,
                "predicted_seconds": decision.predicted_seconds,
                "observed_seconds": observed,
                "oracle_label": best_label,
                "oracle_seconds": measured[best_label],
                "static_1d_seconds": measured.get(static_label),
                "regret": regret,
                "probe_regret": probe_regret,
                "tune_wall_seconds": tune_wall,
                "tuner_stats": tuner.stats(),
            }
        )
    return cells


def run_serving_replay():
    matrices = {
        SERVE_MATRIX: suite.load(SERVE_MATRIX, size=MATRIX_SIZE)
    }
    machine = MachineConfig(n_nodes=SERVE_NODES)
    trace = bursty_trace(
        matrices, n_requests=SERVE_REQUESTS, k=SERVE_K, seed=7,
        burst_size=8, burst_gap=SERVE_BURST_GAP,
    )
    summaries = {}
    for mode, auto in (("static-1d", False), ("tuned", True)):
        policy = ServePolicy(
            max_fused_k=SERVE_MAX_FUSED_K, auto_layout=auto
        )
        scheduler = ServeScheduler(machine, matrices, policy=policy)
        started = time.perf_counter()
        report = scheduler.serve(list(trace))
        summaries[mode] = {
            "serving": report.serving_summary(),
            "wall_seconds": time.perf_counter() - started,
            "tuner_stats": scheduler.tuner_stats(),
        }
    return summaries


def run_tune_experiment():
    cells = run_sweep()
    serving = run_serving_replay()

    within = [c for c in cells if c["regret"] <= REGRET_BOUND]
    share = len(within) / len(cells)
    assert share >= REGRET_SHARE_FLOOR, [
        (c["chosen"], c["regret"]) for c in cells
    ]
    for cell in cells:
        if cell["probe_regret"] is not None:
            assert cell["probe_regret"] == 0.0, cell

    tuned_rps = summaries_rps(serving, "tuned")
    static_rps = summaries_rps(serving, "static-1d")
    assert tuned_rps > static_rps, (tuned_rps, static_rps)

    record = {
        "matrix_size": MATRIX_SIZE,
        "algorithms": list(ALGORITHMS),
        "regret_bound": REGRET_BOUND,
        "regret_share_floor": REGRET_SHARE_FLOOR,
        "regret_share_within_bound": share,
        "cells_misranked": sum(c["regret"] > 0 for c in cells),
        "serving_rps_tuned": tuned_rps,
        "serving_rps_static_1d": static_rps,
        "serving_rps_improvement": (
            tuned_rps / static_rps if static_rps else None
        ),
        "serving_p99_tuned": (
            serving["tuned"]["serving"]["p99_latency"]
        ),
        "serving_p99_static_1d": (
            serving["static-1d"]["serving"]["p99_latency"]
        ),
        "host_cpus": os.cpu_count(),
    }
    return cells, serving, record


def summaries_rps(serving, mode):
    return serving[mode]["serving"]["requests_per_sec"]


def test_pr8_tune_telemetry(benchmark, results_dir):
    cells, serving, record = benchmark.pedantic(
        run_tune_experiment, rounds=1, iterations=1
    )

    log = PerfLog(label="BENCH_PR8")
    for cell in cells:
        log.record_tune_cell(
            name=(
                f"{cell['matrix']}/tune-k{cell['k']}-"
                f"p{cell['n_nodes']}"
            ),
            matrix=cell["matrix"],
            k=cell["k"],
            n_nodes=cell["n_nodes"],
            chosen=cell["chosen"],
            predicted_seconds=cell["predicted_seconds"],
            observed_seconds=cell["observed_seconds"],
            regret=cell["regret"],
            probed=cell["probe_regret"] is not None,
            tuner_stats=cell["tuner_stats"],
            grid=cell["chosen"].split("@", 1)[1],
            wall_seconds=cell["tune_wall_seconds"],
        )
    for mode, payload in serving.items():
        log.record_serve_cell(
            name=f"serve-{SERVE_MATRIX}-{mode}",
            matrix=SERVE_MATRIX,
            algorithm=f"TwoFace/{mode}",
            k=SERVE_K,
            n_nodes=SERVE_NODES,
            serving=payload["serving"],
            wall_seconds=payload["wall_seconds"],
        )
    log.record_experiment("autotuner", record)
    log.write(REPO_ROOT / "BENCH_PR8.json")

    rows = []
    for cell in cells:
        rows.append(
            [
                f"{cell['matrix']}/k{cell['k']}/p{cell['n_nodes']}",
                cell["chosen"],
                f"{cell['observed_seconds']:.6f}",
                (
                    f"{cell['static_1d_seconds']:.6f}"
                    if cell["static_1d_seconds"] is not None else "-"
                ),
                f"{cell['oracle_seconds']:.6f}",
                f"{cell['regret'] * 100:.2f}%",
            ]
        )
    rows.append(
        [
            f"serve {SERVE_MATRIX}/p{SERVE_NODES}",
            "auto_layout",
            f"{summaries_rps(serving, 'tuned'):.1f} req/s",
            f"{summaries_rps(serving, 'static-1d'):.1f} req/s",
            "-",
            (
                f"{record['serving_rps_improvement']:.3f}x"
                if record["serving_rps_improvement"] else "-"
            ),
        ]
    )
    emit(
        results_dir,
        "pr8_tune",
        ["cell", "chosen", "tuned s", "static-1d s", "oracle s",
         "regret"],
        rows,
        f"Autotuner vs oracle ({len(cells)} sweep cells)",
    )

    assert record["regret_share_within_bound"] >= REGRET_SHARE_FLOOR
