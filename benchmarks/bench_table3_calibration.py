"""Table 3: the regression-calibrated model coefficients.

Runs the paper's §6.2 recipe against the simulated machine — the twitter
matrix at K=32, p=32, nine (stripe width x classification) combinations
— and prints the fitted coefficients next to the library's baked-in
defaults and the paper's Delta values.
"""

from repro.core import PAPER_TABLE3, SIM_CALIBRATED, calibrate

from conftest import emit


def run_table3(harness, machine32):
    coeffs = calibrate(harness.matrix("twitter"), machine32, k=32)
    rows = []
    for name in ("beta_s", "alpha_s", "beta_a", "alpha_a", "gamma_a",
                 "kappa_a"):
        rows.append(
            [
                name,
                getattr(coeffs, name),
                SIM_CALIBRATED[name],
                PAPER_TABLE3[name],
            ]
        )
    rows.append(
        [
            "beta_a/beta_s",
            coeffs.beta_a / coeffs.beta_s,
            SIM_CALIBRATED["beta_a"] / SIM_CALIBRATED["beta_s"],
            PAPER_TABLE3["beta_a"] / PAPER_TABLE3["beta_s"],
        ]
    )
    return rows, coeffs


def test_table3_calibration(benchmark, harness, machine32, results_dir):
    rows, coeffs = benchmark.pedantic(
        run_table3, args=(harness, machine32), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "table3_calibration",
        ["coefficient", "fitted now", "library default", "paper (Delta)"],
        rows,
        "Table 3 - linear-regression calibration of the preprocessing "
        "model (paper column describes Delta, not the simulator)",
    )
    # Freshly fitted values agree with the baked-in defaults (same
    # deterministic machine, same recipe).
    for row in rows[:6]:
        name, fitted, default = row[0], row[1], row[2]
        assert fitted == __import__("pytest").approx(default, rel=0.2), name
    # One-sided transfers cost more per element than collectives.
    assert coeffs.beta_a > coeffs.beta_s
