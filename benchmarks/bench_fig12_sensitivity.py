"""Figure 12: sensitivity of Two-Face to the preprocessing-model
coefficients.

Three 3x3 grids scale (alpha_A, beta_A), (alpha_S, beta_S), and
(gamma_A, kappa_A) by {0.8, 1.0, 1.25}; each cell reports execution time
relative to the default coefficients, averaged (geometric mean) over the
paper's three representative matrices: web (best case), twitter (worst
case), stokes (median case).  Paper shape: the calibrated defaults are a
good choice — perturbed cells are almost always >= 1.0.
"""

import numpy as np

from repro.algorithms import TwoFace

from conftest import emit

MATRICES = ("web", "twitter", "stokes")
FACTORS = (0.8, 1.0, 1.25)
GRIDS = {
    "alphaA_betaA": ("alpha_a", "beta_a"),
    "alphaS_betaS": ("alpha_s", "beta_s"),
    "gammaA_kappaA": ("gamma_a", "kappa_a"),
}


def run_fig12(harness, machine32):
    base_times = {
        name: TwoFace(coeffs=harness.coeffs).run(
            harness.matrix(name), harness.dense_input(name, 128), machine32
        ).seconds
        for name in MATRICES
    }
    tables = {}
    for grid_name, (row_param, col_param) in GRIDS.items():
        grid = np.ones((3, 3))
        for i, row_factor in enumerate(FACTORS):
            for j, col_factor in enumerate(FACTORS):
                coeffs = harness.coeffs.scaled(
                    **{row_param: row_factor, col_param: col_factor}
                )
                ratios = []
                for name in MATRICES:
                    t = TwoFace(coeffs=coeffs).run(
                        harness.matrix(name),
                        harness.dense_input(name, 128),
                        machine32,
                    ).seconds
                    ratios.append(t / base_times[name])
                grid[i, j] = float(np.exp(np.mean(np.log(ratios))))
        tables[grid_name] = grid
    return tables


def test_fig12_sensitivity(benchmark, harness, machine32, results_dir):
    tables = benchmark.pedantic(
        run_fig12, args=(harness, machine32), rounds=1, iterations=1
    )
    for grid_name, (row_param, col_param) in GRIDS.items():
        rows = [
            [f"{row_param} x{FACTORS[i]}"] + list(tables[grid_name][i])
            for i in range(3)
        ]
        emit(
            results_dir,
            f"fig12_{grid_name}",
            [""] + [f"{col_param} x{f}" for f in FACTORS],
            rows,
            f"Fig. 12 - relative Two-Face time varying {row_param} and "
            f"{col_param} (geomean over web/twitter/stokes; 1.0 = "
            "default coefficients)",
        )
    for grid_name, grid in tables.items():
        # The centre cell is the baseline by construction.
        assert grid[1, 1] == 1.0
        # Perturbations rarely help, and never dramatically (Fig. 12's
        # conclusion that regression defaults are a good choice).
        assert grid.min() > 0.9
        assert np.mean(grid >= 0.995) >= 5 / 9
