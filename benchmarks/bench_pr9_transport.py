"""Shm-transport wall clock: scaling, model fit, sim identity
(``BENCH_PR9.json``).

Three contracts of the pluggable transport layer (DESIGN.md §11,
``docs/transports.md``):

* **Headline speedup** — running the plan on the shm transport's real
  worker processes is > 1.5x faster in wall-clock than driving the
  single-process simulator over the same cell.  (This host exposes
  ``os.cpu_count()`` CPUs — disclosed in the record — so the raw
  shm process-scaling column is also reported but not gated: with one
  core, more workers cannot beat one worker.)
* **Cost-model validity** — a three-coefficient wall-clock model
  (``alpha + beta * bytes + gamma * flops``, fitted by
  :func:`repro.core.calibration.fit_wall_model` over the measured
  runs) predicts every matrix's measured makespan within 50%
  relative error — same shape as the paper's §6.2 regression,
  re-targeted at a real data plane.
* **Sim identity** — the default transport reproduces a
  ``BENCH_PR8.json`` cell's simulated seconds *exactly*: the
  transport seam changed nothing about the simulator's numbers.

The trajectory lands in ``BENCH_PR9.json`` at the repository root
(schema ``repro-perf/9``; see ``repro.bench.telemetry``).
"""

import json
import os
import pathlib
import time

import numpy as np

from repro import MachineConfig
from repro.bench import PerfLog
from repro.core.calibration import WallObservation, fit_wall_model
from repro.dist.grid import make_grid
from repro.sparse import suite
from repro.transport.shm import ShmTransport
from repro.tune import Tuner

from conftest import emit

REPO_ROOT = pathlib.Path(__file__).parent.parent

MATRIX_SIZE = "tiny"
K = 8
N_NODES = 8
PROCESS_COUNTS = (1, 2, 4, 8)
REPEATS = 3
HEADLINE_PROCESSES = 4
HEADLINE_FLOOR = 1.5

#: Matrices for the wall-model regression (distinct traffic/flop mixes).
MODEL_MATRICES = ("web", "queen", "mawi")
MODEL_KS = (8, 16)
MODEL_ERROR_CEILING = 0.50

#: The BENCH_PR8 cell replayed for sim identity (cheapest tune cell).
IDENTITY_CELL = "web/tune-k32-p64"
IDENTITY_K = 32
IDENTITY_NODES = 64


def make_twoface():
    from repro.algorithms.twoface import TwoFace

    return TwoFace()


def dense_input(A, k, seed=1):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((A.shape[1], k))


def run_scaling():
    """Shm wall clock at 1/2/4/8 workers vs the simulator's host time."""
    A = suite.load("web", size=MATRIX_SIZE)
    B = dense_input(A, K)
    machine = MachineConfig(n_nodes=N_NODES)

    started = time.perf_counter()
    sim = make_twoface().run(A, B, machine)
    sim_wall = time.perf_counter() - started
    assert not sim.failed

    by_procs = {}
    for procs in PROCESS_COUNTS:
        transport = ShmTransport(processes=procs, repeats=REPEATS)
        result = make_twoface().run(A, B, machine, transport=transport)
        assert not result.failed
        assert np.allclose(sim.C, result.C, rtol=0.0, atol=1e-12)
        by_procs[procs] = result
    return sim, sim_wall, by_procs


def run_wall_model():
    """Fit the wall-clock model over shm runs; per-matrix error."""
    observations = []
    for name in MODEL_MATRICES:
        A = suite.load(name, size=MATRIX_SIZE)
        machine = MachineConfig(n_nodes=N_NODES)
        for k in MODEL_KS:
            B = dense_input(A, k)
            transport = ShmTransport(
                processes=HEADLINE_PROCESSES, repeats=REPEATS
            )
            result = make_twoface().run(
                A, B, machine, transport=transport
            )
            assert not result.failed
            observations.append(
                WallObservation(
                    matrix=name,
                    algorithm="TwoFace",
                    k=k,
                    processes=HEADLINE_PROCESSES,
                    bytes_moved=int(result.traffic.total_bytes),
                    flops=2 * A.nnz * k,
                    wall_seconds=result.seconds,
                )
            )
    model = fit_wall_model(observations)
    errors = {}
    for obs in observations:
        errors.setdefault(obs.matrix, []).append(
            model.relative_error(obs)
        )
    per_matrix = {
        name: max(errs) for name, errs in sorted(errors.items())
    }
    return model, observations, per_matrix


def run_sim_identity():
    """Replay a BENCH_PR8 tune cell; simulated seconds must be exact."""
    doc = json.loads((REPO_ROOT / "BENCH_PR8.json").read_text())
    recorded = next(
        c for c in doc["cells"] if c["name"] == IDENTITY_CELL
    )
    A = suite.load(recorded["matrix"], size=MATRIX_SIZE)
    B = np.ones((A.shape[1], IDENTITY_K))
    machine = MachineConfig(n_nodes=IDENTITY_NODES)
    grid = make_grid("1d", IDENTITY_NODES)
    tuner = Tuner(
        machine, algorithms=("Allgather", "TwoFace"), grids=[grid]
    )
    algo = tuner.make_algorithm(recorded["algorithm"])
    result = algo.run(A, B, machine, grid=grid, transport="sim")
    assert not result.failed
    return recorded, result


def run_transport_experiment():
    sim, sim_wall, by_procs = run_scaling()
    model, observations, per_matrix_error = run_wall_model()
    recorded, identity = run_sim_identity()

    headline = by_procs[HEADLINE_PROCESSES]
    speedup = sim_wall / headline.seconds
    assert speedup > HEADLINE_FLOOR, (sim_wall, headline.seconds)
    for name, err in per_matrix_error.items():
        assert err <= MODEL_ERROR_CEILING, (name, err)
    assert identity.seconds == recorded["tune_observed_seconds"]

    record = {
        "matrix_size": MATRIX_SIZE,
        "host_cpus": os.cpu_count(),
        "headline_processes": HEADLINE_PROCESSES,
        "headline_floor": HEADLINE_FLOOR,
        "sim_engine_wall_seconds": sim_wall,
        "shm_wall_seconds_by_processes": {
            str(procs): result.seconds
            for procs, result in by_procs.items()
        },
        "shm_scaling_vs_one_process": {
            str(procs): by_procs[1].seconds / result.seconds
            for procs, result in by_procs.items()
        },
        "headline_speedup_vs_sim_engine": speedup,
        "wall_model": {
            "alpha": model.alpha,
            "beta": model.beta,
            "gamma": model.gamma,
            "max_relative_error_by_matrix": per_matrix_error,
            "error_ceiling": MODEL_ERROR_CEILING,
        },
        "sim_identity": {
            "cell": IDENTITY_CELL,
            "recorded_seconds": recorded["tune_observed_seconds"],
            "replayed_seconds": identity.seconds,
            "identical": (
                identity.seconds == recorded["tune_observed_seconds"]
            ),
        },
    }
    return sim, sim_wall, by_procs, model, observations, record


def test_pr9_transport_telemetry(benchmark, results_dir):
    if not ShmTransport.available():
        import pytest

        pytest.skip("shm transport needs fork + a writable /dev/shm")
    sim, sim_wall, by_procs, model, observations, record = (
        benchmark.pedantic(
            run_transport_experiment, rounds=1, iterations=1
        )
    )

    log = PerfLog(label="BENCH_PR9")
    log.record_cell(
        name=f"web/sim-k{K}-p{N_NODES}",
        matrix="web",
        algorithm="TwoFace",
        k=K,
        n_nodes=N_NODES,
        wall_seconds=sim_wall,
        simulated_seconds=sim.seconds,
        traffic=sim.traffic,
        grid="1d",
        transport="sim",
    )
    for procs, result in by_procs.items():
        log.record_cell(
            name=f"web/shm-w{procs}-k{K}-p{N_NODES}",
            matrix="web",
            algorithm="TwoFace",
            k=K,
            n_nodes=N_NODES,
            wall_seconds=result.seconds,
            simulated_seconds=None,
            traffic=result.traffic,
            grid="1d",
            transport="shm",
        )
    for obs in observations:
        predicted = model.predict(obs.bytes_moved, obs.flops)
        log.record_experiment(
            f"wall_model/{obs.matrix}-k{obs.k}",
            {
                "bytes_moved": obs.bytes_moved,
                "flops": obs.flops,
                "measured_wall_seconds": obs.wall_seconds,
                "predicted_wall_seconds": predicted,
                "relative_error": model.relative_error(obs),
            },
        )
    log.record_experiment("transport", record)
    log.write(REPO_ROOT / "BENCH_PR9.json")

    rows = []
    rows.append(
        ["sim engine (1 process)", f"{sim_wall:.4f}", "-", "-"]
    )
    for procs, result in by_procs.items():
        rows.append(
            [
                f"shm x{procs}",
                f"{result.seconds:.4f}",
                f"{sim_wall / result.seconds:.2f}x",
                f"{by_procs[1].seconds / result.seconds:.2f}x",
            ]
        )
    emit(
        results_dir,
        "pr9_transport",
        ["data plane", "wall s", "vs sim engine", "vs shm x1"],
        rows,
        (
            f"Shm transport wall clock (web/{MATRIX_SIZE}, K={K}, "
            f"p={N_NODES}, {os.cpu_count()} host CPUs)"
        ),
    )

    assert record["headline_speedup_vs_sim_engine"] > HEADLINE_FLOOR
    assert record["sim_identity"]["identical"]
