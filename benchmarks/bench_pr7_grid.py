"""Process-grid telemetry: 1D vs 1.5D vs 2D at scale (``BENCH_PR7.json``).

Runs one (matrix, algorithm, K) cell at 256 simulated nodes under the
three process-grid layouts and records simulated seconds plus the
per-grid-dimension communication counters.  At this node count the 1D
allgather moves ~|B| dense bytes into every rank while the 1.5D and 2D
layouts move ~|B|/c (plus a small allreduce of the C partials), so the
grid runs should win by a wide margin on the collective-dominated
Allgather baseline.

Contracts asserted here:

* ``Grid1D`` is bitwise identical to the grid-free legacy path —
  output bytes, simulated seconds, total traffic, and the event log;
* the best grid layout (1.5D or 2D) beats 1D simulated seconds by
  >= 1.5x on the Allgather baseline at 256 nodes;
* the per-dimension counters land in the telemetry cells: 1.5D
  attributes bytes to ``row`` + ``fiber``, 2D to ``col`` + ``row``.

The trajectory lands in ``BENCH_PR7.json`` at the repository root
(schema ``repro-perf/7``; see ``repro.bench.telemetry``).
"""

import os
import pathlib
import time

from repro import MachineConfig
from repro.bench import ExperimentHarness, PerfLog
from repro.dist.grid import make_grid

from conftest import emit

REPO_ROOT = pathlib.Path(__file__).parent.parent

# The acceptance scenario: the dense-traffic-bound regime.  Size is
# pinned to tiny — the layout geometry, not the matrix scale, is the
# subject, and 768 web rows over 256 ranks still gives every rank a
# populated slab.
MATRIX = "web"
MATRIX_SIZE = "tiny"
N_NODES = 256
K = 64
ALGORITHMS = ("Allgather", "TwoFace")
REPLICATION = 4          # 1.5D: p_r=64, c=4
GRID_ROWS = 16           # 2D: 16 x 16
SPEEDUP_FLOOR = 1.5


def run_grid_experiment():
    harness = ExperimentHarness(size=MATRIX_SIZE, plan_cache=None)
    machine = MachineConfig(n_nodes=N_NODES)
    grids = {
        "1d": make_grid("1d", N_NODES),
        "1.5d": make_grid("1.5d", N_NODES, c=REPLICATION),
        "2d": make_grid("2d", N_NODES, p_r=GRID_ROWS),
    }

    results = {}
    walls = {}
    for algorithm in ALGORITHMS:
        # Contract 1: Grid1D is bitwise identical to the legacy path.
        legacy = harness.run_one(MATRIX, algorithm, K, machine, grid=None)
        for layout, grid in grids.items():
            started = time.perf_counter()
            result = harness.run_one(
                MATRIX, algorithm, K, machine, grid=grid
            )
            walls[(algorithm, layout)] = time.perf_counter() - started
            assert not result.failed, (algorithm, layout)
            results[(algorithm, layout)] = result
        flat = results[(algorithm, "1d")]
        assert flat.C.tobytes() == legacy.C.tobytes()
        assert flat.seconds == legacy.seconds
        assert flat.traffic.total_bytes == legacy.traffic.total_bytes
        assert flat.events == legacy.events

    # Contract 3: the counters name the right grid dimensions.
    for algorithm in ALGORITHMS:
        rep = results[(algorithm, "1.5d")].traffic.dim_bytes
        two = results[(algorithm, "2d")].traffic.dim_bytes
        assert set(rep) == {"row", "fiber"}, rep
        assert set(two) == {"col", "row"}, two

    # Contract 2: a grid layout wins by >= 1.5x where it should.
    flat_s = results[("Allgather", "1d")].seconds
    best_s = min(
        results[("Allgather", layout)].seconds
        for layout in ("1.5d", "2d")
    )
    speedup = flat_s / best_s
    assert speedup >= SPEEDUP_FLOOR, (flat_s, best_s)

    record = {
        "matrix": MATRIX,
        "matrix_size": MATRIX_SIZE,
        "n_nodes": N_NODES,
        "k": K,
        "algorithms": list(ALGORITHMS),
        "grids": {
            layout: grid.describe() for layout, grid in grids.items()
        },
        "allgather_speedup_best_grid": speedup,
        "speedup_floor": SPEEDUP_FLOOR,
        "grid1d_bitwise_identical": True,
        "host_cpus": os.cpu_count(),
        "simulated_seconds": {
            f"{algorithm}/{layout}": results[(algorithm, layout)].seconds
            for algorithm in ALGORITHMS
            for layout in grids
        },
    }
    return grids, results, walls, record


def test_pr7_grid_telemetry(benchmark, results_dir):
    grids, results, walls, record = benchmark.pedantic(
        run_grid_experiment, rounds=1, iterations=1
    )

    log = PerfLog(label="BENCH_PR7")
    for (algorithm, layout), result in results.items():
        token = grids[layout].cache_token()
        log.record_cell(
            name=f"{MATRIX}/{algorithm}/grid-{token}",
            matrix=MATRIX,
            algorithm=algorithm,
            k=K,
            n_nodes=N_NODES,
            wall_seconds=walls[(algorithm, layout)],
            simulated_seconds=result.seconds,
            events_dropped=result.traffic.events_dropped,
            traffic=result.traffic,
            grid=token,
        )
    log.record_experiment("grid_layouts", record)
    log.write(REPO_ROOT / "BENCH_PR7.json")

    rows = []
    for algorithm in ALGORITHMS:
        flat_s = results[(algorithm, "1d")].seconds
        for layout in ("1d", "1.5d", "2d"):
            result = results[(algorithm, layout)]
            traffic = result.traffic
            rows.append(
                [
                    algorithm,
                    grids[layout].cache_token(),
                    f"{result.seconds:.6f}",
                    f"{flat_s / result.seconds:.2f}x",
                    f"{traffic.total_bytes / 1e6:.3f}",
                    f"{traffic.dim_bytes.get('row', 0) / 1e6:.3f}",
                    f"{traffic.dim_bytes.get('col', 0) / 1e6:.3f}",
                    f"{traffic.dim_bytes.get('fiber', 0) / 1e6:.3f}",
                ]
            )
    emit(
        results_dir,
        "pr7_grid",
        ["algorithm", "grid", "sim seconds", "vs 1d", "total MB",
         "row MB", "col MB", "fiber MB"],
        rows,
        f"Process grids: {MATRIX} at p={N_NODES}, K={K}",
    )

    assert record["allgather_speedup_best_grid"] >= SPEEDUP_FLOOR
