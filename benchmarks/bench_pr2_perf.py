"""Perf telemetry for the rank-parallel engine (``BENCH_PR2.json``).

Two measurements, both host-side (simulated seconds must not move):

* Repeated executions of one finalised 8-node Table 1 plan, serial
  (``REPRO_EXEC_WORKERS=1``) vs pooled (``=4``), with the fetch-buffer
  arena counters captured around each phase.  Outputs, per-node
  breakdowns, traffic, and the event log must be *bitwise* identical
  across widths, and after the warm-up execution the arenas must stop
  growing — zero per-stripe buffer allocations in steady state.
* One GNN-style epoch (several SpMMs through a reused
  :class:`~repro.gnn.engine.DistSpMMEngine`) at both widths, showing
  the process-global pool and its warm arenas persist across epochs.

On hosts with >= 4 cores and default-size matrices the pooled run must
be >= 1.8x faster per execution; on smaller hosts (CI smoke containers
are sometimes single-core) the speedup is recorded but not asserted.

Everything lands in ``BENCH_PR2.json`` at the repository root (schema
``repro-perf/2``; see ``repro.bench.telemetry``).
"""

import contextlib
import os
import pathlib
import time

import numpy as np

from repro import MachineConfig
from repro.algorithms.twoface import TwoFace
from repro.bench import PerfLog
from repro.cluster.buffers import arena_stats, reset_arenas, warm_arenas
from repro.core.executor import arena_ceilings
from repro.gnn.engine import DistSpMMEngine
from repro.runtime.pool import (
    WORKERS_ENV,
    get_exec_pool,
    shutdown_exec_pool,
)

from conftest import bench_size, emit

REPO_ROOT = pathlib.Path(__file__).parent.parent

MATRIX = "kmer"  # Table 1's most async-heavy matrix
K = 32
N_NODES = 8
REPEATS = 5
EPOCH_SPMMS = 4  # layers per GNN epoch
POOLED_WIDTH = 4
SPEEDUP_FLOOR = 1.8


@contextlib.contextmanager
def pool_width(width: int):
    """Pin ``REPRO_EXEC_WORKERS`` and rebuild the global pool."""
    old = os.environ.get(WORKERS_ENV)
    os.environ[WORKERS_ENV] = str(width)
    shutdown_exec_pool()
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(WORKERS_ENV, None)
        else:
            os.environ[WORKERS_ENV] = old
        shutdown_exec_pool()


def _assert_bit_identical(serial, pooled):
    np.testing.assert_array_equal(serial.C, pooled.C)
    assert serial.seconds == pooled.seconds
    for node_s, node_p in zip(
        serial.breakdown.nodes, pooled.breakdown.nodes
    ):
        assert node_s == node_p
    assert serial.events == pooled.events


# ----------------------------------------------------------------------
def run_pooled_experiment(harness, machine):
    """Repeated executions of one finalised plan at widths 1 and 4."""
    A = harness.matrix(MATRIX)
    B = harness.dense_input(MATRIX, K)
    first = TwoFace(coeffs=harness.coeffs, force_all_async=True)
    first.run(A, B, machine)
    plan = first.last_plan

    def timed(repeats):
        result = None
        started = time.perf_counter()
        for _ in range(repeats):
            result = TwoFace(coeffs=harness.coeffs, plan=plan).run(
                A, B, machine
            )
        return (time.perf_counter() - started) / repeats, result

    out = {
        "matrix": MATRIX,
        "algorithm": "TwoFace(force_all_async)",
        "k": K,
        "n_nodes": machine.n_nodes,
        "repeats": REPEATS,
        "pooled_width": POOLED_WIDTH,
        "host_cpus": os.cpu_count(),
    }
    results = {}
    timed(1)  # finalise the cached transfer schedules once
    ceilings = arena_ceilings(plan, K)
    for name, width in (("serial", 1), ("pooled", POOLED_WIDTH)):
        with pool_width(width):
            reset_arenas(release_buffers=True)
            warm_arenas(get_exec_pool(), ceilings)
            warm = arena_stats()
            seconds, results[name] = timed(REPEATS)
            steady = arena_stats()
            out[f"{name}_wall_seconds_per_execution"] = seconds
            out[f"{name}_arena_warmup_grows"] = warm.grows
            out[f"{name}_arena_steady_grows"] = steady.grows - warm.grows
            out[f"{name}_arena_steady_hits"] = steady.hits - warm.hits
            out[f"{name}_arena_capacity_bytes"] = steady.capacity_bytes

    _assert_bit_identical(results["serial"], results["pooled"])
    out["speedup"] = (
        out["serial_wall_seconds_per_execution"]
        / out["pooled_wall_seconds_per_execution"]
    )
    out["bit_identical"] = True
    out["simulated_seconds"] = results["serial"].seconds
    return out


def run_gnn_epoch_experiment(harness, machine):
    """One GNN epoch (EPOCH_SPMMS SpMMs) through a reused engine."""
    A = harness.matrix(MATRIX)
    rng = np.random.default_rng(7)
    B = rng.standard_normal((A.shape[1], K))

    def one_epoch(engine):
        started = time.perf_counter()
        for _ in range(EPOCH_SPMMS):
            C, _ = engine.multiply(B)
        return time.perf_counter() - started, C

    out = {
        "matrix": MATRIX,
        "k": K,
        "n_nodes": machine.n_nodes,
        "spmms_per_epoch": EPOCH_SPMMS,
        "host_cpus": os.cpu_count(),
    }
    outputs = {}
    totals = {}
    for name, width in (("serial", 1), ("pooled", POOLED_WIDTH)):
        with pool_width(width):
            reset_arenas(release_buffers=True)
            engine = DistSpMMEngine(A, machine, coeffs=harness.coeffs)
            one_epoch(engine)  # epoch 1: preprocess + schedule caching
            engine.warm_exec_buffers(K)  # pin all workers' arenas
            warm = engine.exec_stats()
            seconds, outputs[name] = one_epoch(engine)  # epoch 2: steady
            steady = engine.exec_stats()
            totals[name] = engine.spmm_seconds
            out[f"{name}_epoch_wall_seconds"] = seconds
            out[f"{name}_epoch_arena_grows"] = (
                steady["arena_grows"] - warm["arena_grows"]
            )
            out[f"{name}_epoch_arena_hits"] = (
                steady["arena_hits"] - warm["arena_hits"]
            )
            assert engine.cache_stats()["recomputes"] == 0

    np.testing.assert_array_equal(outputs["serial"], outputs["pooled"])
    assert totals["serial"] == totals["pooled"]
    out["speedup"] = (
        out["serial_epoch_wall_seconds"] / out["pooled_epoch_wall_seconds"]
    )
    out["simulated_spmm_seconds"] = totals["serial"]
    return out


# ----------------------------------------------------------------------
def test_pr2_perf_telemetry(benchmark, harness, results_dir):
    machine = MachineConfig(n_nodes=N_NODES)
    log = PerfLog(label="BENCH_PR2")

    def run_all():
        return (
            run_pooled_experiment(harness, machine),
            run_gnn_epoch_experiment(harness, machine),
        )

    repeat, epoch = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for name, width in (("serial", 1), ("pooled", POOLED_WIDTH)):
        log.record_cell(
            name=f"{MATRIX}/TwoFace/k{K}/workers{width}",
            matrix=MATRIX,
            algorithm="TwoFace",
            k=K,
            n_nodes=N_NODES,
            wall_seconds=repeat[f"{name}_wall_seconds_per_execution"],
            simulated_seconds=repeat["simulated_seconds"],
        )
        # Arena counters were captured around each phase by hand (the
        # snapshot-delta helper assumes one global phase); copy them in.
        log.cells[-1].arena_hits = repeat[f"{name}_arena_steady_hits"]
        log.cells[-1].arena_grows = repeat[f"{name}_arena_steady_grows"]
    log.record_experiment("repeated_execution", repeat)
    log.record_experiment("gnn_epoch", epoch)
    log.write(REPO_ROOT / "BENCH_PR2.json")

    emit(
        results_dir,
        "pr2_perf",
        ["metric", "value"],
        [[key, repeat[key]] for key in sorted(repeat)]
        + [[f"epoch.{key}", epoch[key]] for key in sorted(epoch)],
        "Rank-parallel engine: serial vs pooled execution",
    )

    # Determinism held (asserted inside the experiments) and the arena
    # reached steady state: zero per-stripe allocations after warm-up.
    assert repeat["bit_identical"]
    for name in ("serial", "pooled"):
        assert repeat[f"{name}_arena_steady_grows"] == 0
        assert repeat[f"{name}_arena_steady_hits"] > 0
        assert epoch[f"{name}_epoch_arena_grows"] == 0
    # The headline speedup needs real cores; record-only on small hosts.
    if os.cpu_count() >= POOLED_WIDTH and bench_size() == "default":
        assert repeat["speedup"] >= SPEEDUP_FLOOR
