"""Figure 11: strong scaling of Two-Face and DS1/2/4/8, K=128, p=1..64.

Paper shape: Two-Face scales as well as or better than dense shifting on
most matrices; mawi scales poorly for everyone (load imbalance); twitter
and friendster stop scaling for Two-Face at high node counts because of
wide multicasts — the §7.2 profile of mean multicast fan-out (twitter
35.7, friendster 43.5, next-largest kmer 5.7 at p=64) is reproduced as a
second table.
"""

from repro import MachineConfig
from repro.algorithms import TwoFace
from repro.sparse import suite

from conftest import emit

NODE_COUNTS = (1, 2, 4, 8, 16, 32, 64)
ALGORITHMS = ("TwoFace", "DS1", "DS2", "DS4", "DS8")


def run_fig11(harness):
    series = {}
    for p in NODE_COUNTS:
        machine = MachineConfig(n_nodes=p)
        for name in suite.matrix_names():
            for algo in ALGORITHMS:
                result = harness.run_one(name, algo, 128, machine)
                series[(name, algo, p)] = (
                    float("nan") if result.failed else result.seconds
                )
    return series


def run_fanout_profile(harness):
    """§7.2: mean multicast recipient count at p=64."""
    machine = MachineConfig(n_nodes=64)
    rows = []
    for name in suite.matrix_names():
        algo = TwoFace(coeffs=harness.coeffs)
        result = algo.run(
            harness.matrix(name), harness.dense_input(name, 128), machine
        )
        fanout = (
            result.extras.get("mean_multicast_fanout", float("nan"))
            if not result.failed
            else float("nan")
        )
        rows.append([name, fanout])
    return rows


def test_fig11_strong_scaling(benchmark, harness, results_dir):
    series = benchmark.pedantic(
        run_fig11, args=(harness,), rounds=1, iterations=1
    )
    rows = []
    for name in suite.matrix_names():
        for algo in ALGORITHMS:
            rows.append(
                [name, algo]
                + [series[(name, algo, p)] for p in NODE_COUNTS]
            )
    emit(
        results_dir,
        "fig11_strong_scaling",
        ["matrix", "algorithm"] + [f"p={p}" for p in NODE_COUNTS],
        rows,
        "Fig. 11 - execution time (s) vs node count, K=128 "
        "(OOM = too much memory, as in the paper's missing points)",
    )

    def speedup_1_to_64(name, algo):
        t1, t64 = series[(name, algo, 1)], series[(name, algo, 64)]
        return t1 / t64

    # Two-Face scales well on the locality-heavy matrices.
    for name in ("web", "queen", "stokes", "arabic"):
        assert speedup_1_to_64(name, "TwoFace") > 4.0
    # mawi scales poorly for everybody (load imbalance).
    assert speedup_1_to_64("mawi", "TwoFace") < 4.0
    # twitter: collectives limit Two-Face's scaling (paper: 0.76x best
    # case regression from 1 to 64 nodes).
    assert speedup_1_to_64("twitter", "TwoFace") < speedup_1_to_64(
        "web", "TwoFace"
    )


def test_fig11_multicast_fanout_profile(
    benchmark, harness, results_dir
):
    rows = benchmark.pedantic(
        run_fanout_profile, args=(harness,), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "fig11_multicast_fanout",
        ["matrix", "mean multicast recipients (p=64)"],
        rows,
        "§7.2 profile - mean recipients per collective transfer at "
        "p=64 (paper: twitter 35.7, friendster 43.5, kmer 5.7)",
    )
    fanout = {row[0]: row[1] for row in rows}
    # friendster has by far the widest collectives; the social graphs
    # multicast wider than kmer (paper: 43.5 / 35.7 vs 5.7).
    assert fanout["friendster"] == max(fanout.values())
    assert fanout["friendster"] > 2 * fanout["kmer"]
    assert fanout["twitter"] > fanout["kmer"]
