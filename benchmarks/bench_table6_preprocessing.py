"""Table 6: preprocessing overhead normalised to one SpMM operation.

``t_norm_I/O`` includes reading the matrix from textual Matrix Market
format and writing the preprocessed binary structures; ``t_norm`` is the
classification + construction work alone.  Paper averages: 134.35 with
I/O, 24.27 without, at K=128 (and ~6 without I/O at K=512); either way
a few dozen SpMM operations amortise it (§7.3).
"""

import numpy as np

from repro.algorithms import TwoFace
from repro.sparse import suite

from conftest import emit


def run_table6(harness, machine32):
    rows = []
    norms, norms_io = [], []
    for name in suite.matrix_names():
        algo = TwoFace(coeffs=harness.coeffs)
        result = algo.run(
            harness.matrix(name), harness.dense_input(name, 128), machine32
        )
        report = algo.last_report
        t_norm_io = report.modeled_seconds_with_io / result.seconds
        t_norm = report.modeled_seconds / result.seconds
        norms.append(t_norm)
        norms_io.append(t_norm_io)
        rows.append([name, t_norm_io, t_norm])
    rows.append(["average", float(np.mean(norms_io)),
                 float(np.mean(norms))])
    return rows


def run_amortization(harness, machine32):
    """SpMM count for Two-Face (incl. preprocessing) to beat DS2."""
    rows = []
    for name in suite.matrix_names():
        algo = TwoFace(coeffs=harness.coeffs)
        tf = algo.run(
            harness.matrix(name), harness.dense_input(name, 128), machine32
        )
        ds = harness.run_one(name, "DS2", 128, machine32)
        saving = ds.seconds - tf.seconds
        if saving <= 0:
            rows.append([name, None])
        else:
            ops = int(np.ceil(
                algo.last_report.modeled_seconds / saving
            ))
            rows.append([name, ops])
    return rows


def test_table6_preprocessing(benchmark, harness, machine32, results_dir):
    rows = benchmark.pedantic(
        run_table6, args=(harness, machine32), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "table6_preprocessing",
        ["matrix", "t_norm_I/O", "t_norm"],
        rows,
        "Table 6 - preprocessing cost / one SpMM at K=128 "
        "(paper averages: 134.35 with I/O, 24.27 without)",
    )
    by_name = {row[0]: row for row in rows}
    # I/O dominates preprocessing, as in the paper.
    for row in rows:
        assert row[1] > row[2]
    # Amortisable in tens of operations, not thousands.
    assert by_name["average"][2] < 200


def test_table6_amortization(benchmark, harness, machine32, results_dir):
    rows = benchmark.pedantic(
        run_amortization, args=(harness, machine32), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "table6_amortization",
        ["matrix", "SpMM ops to amortise vs DS2"],
        rows,
        "§7.3 - operations after which Two-Face (preprocessing "
        "included) beats DS2 at K=128 (paper: ~15 on average; '-' = "
        "Two-Face not faster on this matrix)",
    )
    amortised = [row[1] for row in rows if row[1] is not None]
    assert amortised  # at least the locality-heavy matrices amortise
    assert np.median(amortised) < 100
