"""Ablation: the z_i-sorted greedy classifier vs alternatives (§4.2).

Compares the paper's model-based classification against the two
extremes (all-sync, all-async) and a naive density-threshold heuristic
(flip the sparsest half of remote stripes).  Paper's claim: the model
approximately equalises lanes and beats both extremes overall.
"""

import numpy as np

from repro.algorithms import TwoFace
from repro.core.calibration import density_threshold_override
from repro.sparse import suite

from conftest import emit


def run_classifier_ablation(harness, machine32):
    rows = []
    for name in suite.matrix_names():
        A = harness.matrix(name)
        B = harness.dense_input(name, 128)
        variants = {
            "model": TwoFace(coeffs=harness.coeffs),
            "all_sync": TwoFace(coeffs=harness.coeffs,
                                force_all_sync=True),
            "all_async": TwoFace(coeffs=harness.coeffs,
                                 force_all_async=True),
            "density_half": TwoFace(
                coeffs=harness.coeffs,
                classify_override=density_threshold_override(0.5),
            ),
        }
        row = [name]
        for variant in ("model", "all_sync", "all_async", "density_half"):
            result = variants[variant].run(A, B, machine32)
            row.append(
                float("nan") if result.failed else result.seconds
            )
        rows.append(row)
    return rows


def test_ablation_classifier(benchmark, harness, machine32, results_dir):
    rows = benchmark.pedantic(
        run_classifier_ablation, args=(harness, machine32),
        rounds=1, iterations=1,
    )
    emit(
        results_dir,
        "ablation_classifier",
        ["matrix", "model (s)", "all sync (s)", "all async (s)",
         "density 50% (s)"],
        rows,
        "Ablation - stripe classification strategies at K=128 "
        "(model = the paper's z-sorted greedy rule)",
    )
    model_times = np.array([row[1] for row in rows])
    geo = lambda xs: float(np.exp(np.nanmean(np.log(xs))))  # noqa: E731
    model_geo = geo(model_times)
    for column, label in ((2, "all_sync"), (3, "all_async"),
                          (4, "density_half")):
        other = np.array([row[column] for row in rows], dtype=float)
        assert model_geo <= geo(other) * 1.05, label
    # The model never loses catastrophically to the better extreme.
    for row in rows:
        best_extreme = np.nanmin([row[2], row[3]])
        assert row[1] <= 2.5 * best_extreme, row[0]
