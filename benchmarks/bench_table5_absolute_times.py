"""Table 5: absolute execution times of DS2 and Two-Face.

The paper averages five consecutive SpMM operations; the simulator is
deterministic, so five runs are still performed (exercising the real
code path) and averaged.
"""

import numpy as np

from repro.sparse import suite

from conftest import emit

N_REPEATS = 5


def run_table5(harness, machine32):
    rows = []
    for k in (32, 128, 512):
        for name in suite.matrix_names():
            ds_times, tf_times = [], []
            for _ in range(N_REPEATS):
                ds_times.append(
                    harness.run_one(name, "DS2", k, machine32).seconds
                )
                tf_times.append(
                    harness.run_one(name, "TwoFace", k, machine32).seconds
                )
            rows.append(
                [f"K={k}", name, float(np.mean(ds_times)),
                 float(np.mean(tf_times))]
            )
    return rows


def test_table5_absolute_times(benchmark, harness, machine32, results_dir):
    rows = benchmark.pedantic(
        run_table5, args=(harness, machine32), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "table5_absolute_times",
        ["K", "matrix", "DS2 (s)", "Two-Face (s)"],
        rows,
        "Table 5 - absolute simulated times, mean of "
        f"{N_REPEATS} SpMM operations (paper reports Delta seconds; "
        "shapes, not magnitudes, are comparable)",
    )
    by_key = {(row[0], row[1]): row for row in rows}
    # The paper's K-trend: Two-Face's advantage on web grows with K.
    ratio_32 = by_key[("K=32", "web")][2] / by_key[("K=32", "web")][3]
    ratio_512 = by_key[("K=512", "web")][2] / by_key[("K=512", "web")][3]
    assert ratio_512 >= 0.9 * ratio_32
    # Deterministic timing: repeated runs agree.
    assert all(row[2] > 0 and row[3] > 0 for row in rows)
