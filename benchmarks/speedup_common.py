"""Shared logic for the Figs. 7-9 speedup benchmarks."""

from repro.algorithms import FIGURE_ALGORITHMS
from repro.sparse import suite

from conftest import emit

HEADERS = ["matrix"] + [f"{a} (x)" for a in FIGURE_ALGORITHMS]


def run_speedup_sweep(harness, machine, k):
    """Run all figure algorithms at one K; return speedup-over-DS2 rows."""
    sweep = harness.sweep(
        suite.matrix_names(), FIGURE_ALGORITHMS, k, machine
    )
    rows = []
    geo_mean = [1.0] * len(FIGURE_ALGORITHMS)
    counts = [0] * len(FIGURE_ALGORITHMS)
    for name in suite.matrix_names():
        row = [name]
        for i, algo in enumerate(FIGURE_ALGORITHMS):
            s = sweep.speedup_over(name, algo, "DS2")
            row.append(s)
            if s == s:  # not NaN
                geo_mean[i] *= s
                counts[i] += 1
        rows.append(row)
    avg_row = ["geomean"]
    for i in range(len(FIGURE_ALGORITHMS)):
        avg_row.append(
            geo_mean[i] ** (1.0 / counts[i]) if counts[i] else float("nan")
        )
    rows.append(avg_row)
    return rows, sweep


def emit_speedups(results_dir, name, title, rows):
    return emit(results_dir, name, HEADERS, rows, title)


def twoface_speedup(rows, matrix):
    by_name = {row[0]: row for row in rows}
    idx = 1 + FIGURE_ALGORITHMS.index("TwoFace")
    return by_name[matrix][idx]
