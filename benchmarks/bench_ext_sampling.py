"""Extension bench: sampled SpMM over one offline plan (§5.4 sketch).

Sweeps the edge keep-probability and reports the simulated SpMM time:
communication stays fixed (the conservative design the paper sketches)
while compute shrinks with the sample, so time approaches the
communication floor as sampling gets more aggressive.
"""

import numpy as np

from repro import MachineConfig
from repro.gnn import SampledSpMMEngine, gcn_normalize, planted_partition

from conftest import emit

KEEP_PROBS = (1.0, 0.75, 0.5, 0.25, 0.1)


def run_sampling(harness):
    machine = MachineConfig(n_nodes=16, memory_capacity=1 << 30)
    ahat = gcn_normalize(
        planted_partition(
            4096, n_classes=16, intra_fraction=0.95, avg_degree=12, seed=3
        ).adjacency
    )
    rng = np.random.default_rng(1)
    B = rng.standard_normal((ahat.shape[1], 64))
    rows = []
    for prob in KEEP_PROBS:
        engine = SampledSpMMEngine(
            ahat, machine, keep_probability=prob, k=64,
            coeffs=harness.coeffs, seed=0,
        )
        _, mask, seconds = engine.multiply(B)
        rows.append(
            [prob, mask.kept_nnz, mask.total_nnz, seconds,
             engine.preprocess_seconds]
        )
    return rows


def test_ext_sampling(benchmark, harness, results_dir):
    rows = benchmark.pedantic(run_sampling, args=(harness,), rounds=1,
                              iterations=1)
    emit(
        results_dir,
        "ext_sampling",
        ["keep prob", "kept nnz", "stored nnz", "SpMM (s)",
         "one-time preprocessing (s)"],
        rows,
        "Extension (§5.4) - sampled SpMM on one offline plan: fixed "
        "communication, compute scaled to the surviving edges",
    )
    times = [row[3] for row in rows]
    # Monotone: keeping fewer edges never costs more time.
    assert all(t1 >= t2 - 1e-12 for t1, t2 in zip(times, times[1:]))
    # One plan for the whole sweep (same preprocessing figure each row).
    assert len({round(row[4], 12) for row in rows}) == 1
    # Sampling cannot beat the fixed communication floor: even at 10%
    # edges the time stays a significant fraction of the full run.
    assert times[-1] > 0.3 * times[0]
