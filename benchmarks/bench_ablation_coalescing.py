"""Ablation: row coalescing in asynchronous transfers (§5.2.3).

Compares Two-Face's one-sided traffic and time with the paper's
K-dependent coalescing distance against (a) no coalescing beyond
adjacency and (b) aggressive coalescing.  The paper's rule (127/K)+1
trades useless rows for fewer requests only when K is small.
"""

import numpy as np

from repro import MachineConfig
from repro.algorithms import AsyncFine
from repro.runtime import max_coalescing_gap
from repro.sparse import suite

from conftest import emit


def run_coalescing(harness, machine32, monkey_gaps=(1, None, 8)):
    """None = the paper's formula; integers = fixed gaps."""
    import repro.core.executor as executor_module

    rows = []
    original = executor_module.max_coalescing_gap
    try:
        for k in (32, 128):
            for name in ("kmer", "web"):
                A = harness.matrix(name)
                B = harness.dense_input(name, k)
                row = [f"K={k}", name]
                for gap in monkey_gaps:
                    if gap is None:
                        executor_module.max_coalescing_gap = original
                    else:
                        executor_module.max_coalescing_gap = (
                            lambda _k, _g=gap: _g
                        )
                    algo = AsyncFine(coeffs=harness.coeffs)
                    result = algo.run(A, B, machine32)
                    row.extend(
                        [result.seconds,
                         result.traffic.onesided_requests,
                         result.traffic.onesided_bytes]
                    )
                rows.append(row)
    finally:
        executor_module.max_coalescing_gap = original
    return rows


def test_ablation_coalescing(benchmark, harness, machine32, results_dir):
    rows = benchmark.pedantic(
        run_coalescing, args=(harness, machine32), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "ablation_coalescing",
        [
            "K", "matrix",
            "adj-only s", "adj-only reqs", "adj-only bytes",
            "paper-rule s", "paper reqs", "paper bytes",
            "gap=8 s", "gap=8 reqs", "gap=8 bytes",
        ],
        rows,
        "Ablation - async transfer coalescing (paper rule: gap = "
        "127/K + 1; Async Fine, so all transfers are one-sided)",
    )
    for row in rows:
        adj_bytes, paper_bytes, aggressive_bytes = row[4], row[7], row[10]
        # More aggressive coalescing never moves fewer bytes.
        assert adj_bytes <= paper_bytes <= aggressive_bytes
        adj_reqs, paper_reqs, aggressive_reqs = row[3], row[6], row[9]
        assert aggressive_reqs <= paper_reqs <= adj_reqs
    # At K=128 the paper rule degenerates to adjacency-only.
    k128 = [row for row in rows if row[0] == "K=128"]
    for row in k128:
        assert row[4] == row[7]
        assert max_coalescing_gap(128) == 1
