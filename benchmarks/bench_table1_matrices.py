"""Table 1: the evaluation-matrix inventory.

Prints each analogue's dimensions, nonzeros, and stripe width next to
the SuiteSparse original it stands in for, plus the structural statistic
that justifies the substitution (diagonal-block locality under 1D
partitioning).
"""

from repro.sparse import SUITE, compute_stats, stripe_width_for, suite

from conftest import emit


def run_table1(harness):
    rows = []
    for name in suite.matrix_names():
        spec = SUITE[name]
        matrix = harness.matrix(name)
        stats = compute_stats(matrix, blocks=32)
        rows.append(
            [
                spec.long_name,
                name,
                spec.paper_rows_millions,
                spec.paper_nnz_millions,
                spec.paper_stripe_width,
                matrix.shape[0],
                matrix.nnz,
                stripe_width_for(matrix.shape[0]),
                stats.diag_block_fraction,
                stats.col_gini,
            ]
        )
    return rows


def test_table1_matrices(benchmark, harness, results_dir):
    rows = benchmark.pedantic(run_table1, args=(harness,), rounds=1,
                              iterations=1)
    emit(
        results_dir,
        "table1_matrices",
        [
            "SuiteSparse name", "short", "paper Mrows", "paper Mnnz",
            "paper W", "analogue rows", "analogue nnz", "analogue W",
            "diag-block frac", "col gini",
        ],
        rows,
        "Table 1 - evaluation matrices: paper originals and synthetic "
        "analogues",
    )
    by_short = {row[1]: row for row in rows}
    # All eight matrices present, analogue nnz ordering sane.
    assert len(rows) == 8
    # kmer is the largest analogue by rows, as in the paper.
    assert by_short["kmer"][5] == max(row[5] for row in rows)
    # Mesh matrices are near-fully local; social ones are not.
    assert by_short["queen"][8] > 0.9
    assert by_short["friendster"][8] < 0.5
