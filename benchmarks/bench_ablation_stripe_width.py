"""Ablation: stripe width W (paper §6.2).

The paper picked per-matrix widths after observing overhead growth as
stripes shrink.  This sweep reproduces that trade-off on queen, arabic,
and twitter (the matrices the paper used to choose W): too-narrow
stripes inflate per-stripe overheads, too-wide stripes blunt the
classifier's selectivity.
"""

from repro.algorithms import TwoFace
from repro.sparse import stripe_width_for

from conftest import emit

MATRICES = ("queen", "arabic", "twitter")


#: Amortisation horizon: the paper's average SpMM count to amortise
#: preprocessing at K=128 (§7.3), so the metric reflects steady-state
#: cost per SpMM including the preprocessing share.
AMORTIZE_OVER = 15


def run_width_sweep(harness, machine32):
    rows = []
    for name in MATRICES:
        A = harness.matrix(name)
        B = harness.dense_input(name, 128)
        default_w = stripe_width_for(A.shape[0])
        row = [name, default_w]
        for factor in (0.25, 0.5, 1.0, 2.0, 4.0):
            width = max(4, int(default_w * factor))
            algo = TwoFace(stripe_width=width, coeffs=harness.coeffs)
            result = algo.run(A, B, machine32)
            row.append(
                result.seconds
                + algo.last_report.modeled_seconds / AMORTIZE_OVER
            )
        rows.append(row)
    return rows


def test_ablation_stripe_width(benchmark, harness, machine32, results_dir):
    rows = benchmark.pedantic(
        run_width_sweep, args=(harness, machine32), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "ablation_stripe_width",
        ["matrix", "default W", "W/4 (s)", "W/2 (s)", "W (s)", "2W (s)",
         "4W (s)"],
        rows,
        "Ablation - Two-Face steady-state cost per SpMM (run + "
        f"preprocessing/{AMORTIZE_OVER}) vs stripe width (paper §6.2: "
        "too-narrow stripes inflate overheads; width scales with "
        "matrix dimension)",
    )
    for row in rows:
        times = row[2:]
        best = min(times)
        at_default = row[4]
        # The dimension-scaled default is within 10% of the sweep's best
        # (the paper: "reasonable, static values provide good
        # performance").
        assert at_default <= 1.1 * best, row[0]
