"""Ablation: the §4.2 column-based (fan-out) classification alternative.

The paper sketches classifying a stripe as synchronous "when its
corresponding dense stripe is needed by many nodes", leaving evaluation
to future work.  We implement it (`repro.core.column_classifier`) and
race it against the paper's z-sorted model rule, with the fan-out
threshold picked by the installation-time tuning helper.
"""

import numpy as np

from repro.algorithms import TwoFace
from repro.core import StripeGeometry
from repro.core.column_classifier import (
    auto_min_fanout,
    column_fanout_override,
)
from repro.dist import DistSparseMatrix, RowPartition
from repro.sparse import stripe_width_for, suite

from conftest import emit


def run_column_ablation(harness, machine32):
    rows = []
    for name in suite.matrix_names():
        A = harness.matrix(name)
        B = harness.dense_input(name, 128)
        width = stripe_width_for(A.shape[0])
        geometry = StripeGeometry(
            A.shape[0], A.shape[1], machine32.n_nodes, width
        )
        dist = DistSparseMatrix(
            A, RowPartition(A.shape[0], machine32.n_nodes)
        )
        model = TwoFace(coeffs=harness.coeffs).run(A, B, machine32)
        row = [name, model.seconds]
        for fraction in (0.75, 0.5, 0.25):
            tau = auto_min_fanout(
                dist, geometry, target_sync_fraction=fraction
            )
            override = column_fanout_override(dist, geometry,
                                              min_fanout=tau)
            result = TwoFace(
                stripe_width=width, coeffs=harness.coeffs,
                classify_override=override,
            ).run(A, B, machine32)
            row.append(float("nan") if result.failed else result.seconds)
        rows.append(row)
    return rows


def test_ablation_column_classifier(
    benchmark, harness, machine32, results_dir
):
    rows = benchmark.pedantic(
        run_column_ablation, args=(harness, machine32), rounds=1,
        iterations=1,
    )
    emit(
        results_dir,
        "ablation_column_classifier",
        ["matrix", "model rule (s)", "fanout 75% sync (s)",
         "fanout 50% sync (s)", "fanout 25% sync (s)"],
        rows,
        "Ablation - the paper's z-sorted model rule vs the §4.2 "
        "column-fan-out heuristic at K=128 (heuristic threshold picked "
        "per target sync fraction)",
    )
    model = np.array([row[1] for row in rows])
    geo = lambda xs: float(np.exp(np.nanmean(np.log(xs))))  # noqa: E731
    # The model-based rule wins on geomean against every threshold:
    # fan-out alone ignores the async compute cost (gamma_A n_i) that
    # the z_i score accounts for.
    for column in (2, 3, 4):
        heuristic = np.array([row[column] for row in rows], dtype=float)
        assert geo(model) <= geo(heuristic) * 1.02
