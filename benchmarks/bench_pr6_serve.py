"""Serving-layer telemetry: K-panel fusion vs serial (``BENCH_PR6.json``).

Replays the acceptance trace — a bursty, hot-matrix-skewed request
stream against the async-heavy ``kmer`` analogue at 16 nodes, request
width K=8 — through the serving scheduler twice per pool width: fused
(K-panel batching up to K=64) and serial (every request unbatched).

Contracts asserted here:

* every request's fused output slice is byte-identical to its serial
  (unbatched) execution — the classification-pin guarantee of
  DESIGN.md §8;
* the replay is bit-identical across ``REPRO_EXEC_WORKERS`` widths 1
  and 4 (outputs, timings, and the whole serving summary);
* fused serving sustains >= 2x the serial simulated requests/sec at
  equal-or-better p99 latency.

The trajectory lands in ``BENCH_PR6.json`` at the repository root
(schema ``repro-perf/6``; see ``repro.bench.telemetry``).
"""

import contextlib
import os
import pathlib
import time

from repro import MachineConfig
from repro.bench import PerfLog
from repro.runtime.pool import WORKERS_ENV, shutdown_exec_pool
from repro.serve import DONE, ServePolicy, ServeScheduler, hot_matrix_trace
from repro.sparse import suite

from conftest import emit

REPO_ROOT = pathlib.Path(__file__).parent.parent

# The acceptance scenario: fusion amortisation is strongest where
# per-fetch latency dominates, i.e. the async-heavy kmer analogue at
# high node counts and narrow per-request K.  (Size is pinned to tiny:
# the serving trace parameters, not the matrix scale, are the subject.)
HOT_MATRIX = "kmer"
MATRIX_SIZE = "tiny"
N_NODES = 16
REQUEST_K = 8
N_REQUESTS = 48
TRACE_SEED = 7
BURST_SIZE = 8
BURST_GAP = 0.02  # saturating: arrivals outpace the serial service rate
MAX_FUSED_K = 64
MAX_BATCH_DELAY = 0.05
POOLED_WIDTH = 4
SPEEDUP_FLOOR = 2.0


@contextlib.contextmanager
def pool_width(width: int):
    """Pin ``REPRO_EXEC_WORKERS`` and rebuild the global pool."""
    old = os.environ.get(WORKERS_ENV)
    os.environ[WORKERS_ENV] = str(width)
    shutdown_exec_pool()
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(WORKERS_ENV, None)
        else:
            os.environ[WORKERS_ENV] = old
        shutdown_exec_pool()


def replay(matrices, trace, fuse):
    """One fresh-scheduler replay; returns (report, wall_seconds)."""
    scheduler = ServeScheduler(
        MachineConfig(n_nodes=N_NODES),
        matrices,
        policy=ServePolicy(
            max_fused_k=MAX_FUSED_K,
            max_batch_delay=MAX_BATCH_DELAY,
            max_queue_depth=4 * N_REQUESTS,
        ),
    )
    started = time.perf_counter()
    report = scheduler.serve(trace, fuse=fuse)
    return report, time.perf_counter() - started


def run_serving_experiment():
    matrices = {HOT_MATRIX: suite.load(HOT_MATRIX, size=MATRIX_SIZE)}
    trace = hot_matrix_trace(
        matrices, n_requests=N_REQUESTS, k=REQUEST_K, seed=TRACE_SEED,
        hot=HOT_MATRIX, burst_size=BURST_SIZE, burst_gap=BURST_GAP,
    )
    reports = {}
    walls = {}
    for width in (1, POOLED_WIDTH):
        with pool_width(width):
            for mode, fuse in (("fused", True), ("serial", False)):
                key = f"{mode}_w{width}"
                reports[key], walls[key] = replay(matrices, trace, fuse)

    # Contract 1: fused slices byte-identical to unbatched execution.
    for width in (1, POOLED_WIDTH):
        fused = reports[f"fused_w{width}"]
        serial = reports[f"serial_w{width}"]
        for fo, so in zip(fused.outcomes, serial.outcomes):
            assert fo.status == so.status == DONE
            assert fo.C.tobytes() == so.C.tobytes()

    # Contract 2: the replay is bit-identical across pool widths.
    for mode in ("fused", "serial"):
        narrow = reports[f"{mode}_w1"]
        wide = reports[f"{mode}_w{POOLED_WIDTH}"]
        assert narrow.serving_summary() == wide.serving_summary()
        for a, b in zip(narrow.outcomes, wide.outcomes):
            assert a.completion == b.completion
            assert a.C.tobytes() == b.C.tobytes()

    fs = reports["fused_w1"].serving_summary()
    ss = reports["serial_w1"].serving_summary()
    speedup = fs["requests_per_sec"] / ss["requests_per_sec"]

    # Contract 3: >= 2x simulated throughput at equal-or-better p99.
    assert speedup >= SPEEDUP_FLOOR, (fs, ss)
    assert fs["p99_latency"] <= ss["p99_latency"], (fs, ss)

    record = {
        "matrix": HOT_MATRIX,
        "matrix_size": MATRIX_SIZE,
        "n_nodes": N_NODES,
        "request_k": REQUEST_K,
        "n_requests": N_REQUESTS,
        "trace": "hot",
        "trace_seed": TRACE_SEED,
        "burst_size": BURST_SIZE,
        "burst_gap": BURST_GAP,
        "max_fused_k": MAX_FUSED_K,
        "max_batch_delay": MAX_BATCH_DELAY,
        "requests_per_sec_speedup": speedup,
        "fused_fusion_factor": fs["fusion_factor"],
        "byte_identical_slices": True,
        "bitwise_across_widths": True,
        "pooled_width": POOLED_WIDTH,
        "host_cpus": os.cpu_count(),
        "fused_summary": fs,
        "serial_summary": ss,
    }
    return reports, walls, record


def test_pr6_serving_telemetry(benchmark, results_dir):
    reports, walls, record = benchmark.pedantic(
        run_serving_experiment, rounds=1, iterations=1
    )

    log = PerfLog(label="BENCH_PR6")
    for key, report in reports.items():
        log.record_serve_cell(
            name=f"{HOT_MATRIX}/serve/{key}",
            matrix=HOT_MATRIX,
            algorithm=f"TwoFace/{key.split('_')[0]}",
            k=REQUEST_K,
            n_nodes=N_NODES,
            serving=report.serving_summary(),
            wall_seconds=walls[key],
        )
    log.record_experiment("serving_fusion", record)
    log.write(REPO_ROOT / "BENCH_PR6.json")

    fs, ss = record["fused_summary"], record["serial_summary"]
    emit(
        results_dir,
        "pr6_serve",
        ["metric", "fused", "serial"],
        [
            [name, fs[name], ss[name]]
            for name in (
                "completed", "batches", "fusion_factor", "p50_latency",
                "p99_latency", "requests_per_sec", "peak_queue_depth",
                "makespan",
            )
        ]
        + [["requests_per_sec speedup",
            record["requests_per_sec_speedup"], 1.0]],
        "Serving: K-panel fusion vs serial on the hot-matrix trace",
    )

    assert record["requests_per_sec_speedup"] >= SPEEDUP_FLOOR
