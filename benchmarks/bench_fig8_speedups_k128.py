"""Figure 8: speedups of all SpMM algorithms over DS2 at K=128.

Paper shape: Two-Face is the fastest algorithm on the locality-heavy
matrices (web, queen, stokes, arabic) and on average; dense shifting
wins on twitter/friendster; Async Fine collapses on social graphs.
"""

from speedup_common import emit_speedups, run_speedup_sweep, twoface_speedup


def test_fig8_speedups_k128(benchmark, harness, machine32, results_dir):
    rows, _ = benchmark.pedantic(
        run_speedup_sweep, args=(harness, machine32, 128),
        rounds=1, iterations=1,
    )
    emit_speedups(
        results_dir,
        "fig8_speedups_k128",
        "Fig. 8 - speedup over DS2, p=32, K=128 (OOM = failed run)",
        rows,
    )
    for name in ("web", "queen", "stokes", "arabic"):
        assert twoface_speedup(rows, name) > 1.5
    for name in ("twitter", "friendster"):
        assert twoface_speedup(rows, name) < 1.0
