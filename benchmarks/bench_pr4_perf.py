"""Perf telemetry for the segmented scatter engine (``BENCH_PR4.json``).

Two measurements, both host-side (simulated seconds must not move):

* The raw scatter kernel on the hub/power-law Table 1 analogues
  (``mawi``, ``twitter``), where duplicate output rows dominate:
  ``np.add.at`` (the pinned ``REPRO_SCATTER=atomic`` reference) vs the
  segmented reduction consuming a precomputed
  :class:`~repro.core.formats.ReduceSchedule`-style geometry.  Target
  >= 3x per-call speedup on default-size matrices.
* Repeated executions of one finalised 8-node force-all-async plan on
  ``kmer`` under ``REPRO_SCATTER=segmented`` vs ``atomic`` at pool
  widths 1 and 4.  Simulated seconds, per-node lane breakdowns,
  traffic counters, and the event log must be *bitwise* identical
  between the modes; ``C`` must agree within 1e-12 relative tolerance
  (summation order changes) while staying byte-identical across
  repeated runs and widths *within* each mode; the arenas must stop
  growing after warm-up at every width (zero steady-state
  allocations); and the segmented engine must be >= 1.5x faster per
  execution on default-size matrices.

Everything lands in ``BENCH_PR4.json`` at the repository root (schema
``repro-perf/4``; see ``repro.bench.telemetry``).
"""

import contextlib
import os
import pathlib
import time

import numpy as np

from repro import MachineConfig
from repro.algorithms.twoface import TwoFace
from repro.bench import PerfLog
from repro.cluster.buffers import arena_stats, reset_arenas, warm_arenas
from repro.core.executor import arena_ceilings
from repro.runtime.pool import (
    WORKERS_ENV,
    get_exec_pool,
    shutdown_exec_pool,
)
from repro.sparse import (
    SCATTER_ENV,
    SUITE,
    build_reduce_order,
    scatter_add,
    scatter_add_segmented,
    scatter_stats,
)

from conftest import bench_size, emit

REPO_ROOT = pathlib.Path(__file__).parent.parent

KERNEL_MATRICES = ("mawi", "twitter")  # hub-skewed / power-law analogues
E2E_MATRIX = "kmer"  # Table 1's most async-heavy matrix
K = 32
N_NODES = 8
KERNEL_REPEATS = 5
E2E_REPEATS = 5
POOLED_WIDTH = 4
KERNEL_SPEEDUP_FLOOR = 3.0
E2E_SPEEDUP_FLOOR = 1.5


@contextlib.contextmanager
def env_var(name: str, value: str):
    """Pin one environment variable for the duration of a phase."""
    old = os.environ.get(name)
    os.environ[name] = value
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(name, None)
        else:
            os.environ[name] = old


@contextlib.contextmanager
def pool_width(width: int):
    """Pin ``REPRO_EXEC_WORKERS`` and rebuild the global pool."""
    with env_var(WORKERS_ENV, str(width)):
        shutdown_exec_pool()
        yield
    shutdown_exec_pool()


def _timed(fn, repeats):
    fn()  # warm caches/arenas outside the measured window
    started = time.perf_counter()
    for _ in range(repeats):
        result = fn()
    return (time.perf_counter() - started) / repeats, result


# ----------------------------------------------------------------------
def run_kernel_experiment(harness, name):
    """Atomic vs segmented scatter on one matrix's full nonzero set."""
    A = harness.matrix(name)
    B = harness.dense_input(name, K)
    rows, vals = A.rows, A.vals
    B_rows = B[A.cols]  # gathered dense rows, as the async lane sees them
    order, seg_starts, out_rows = build_reduce_order(rows)
    C = np.zeros((A.shape[0], K))

    atomic_seconds, _ = _timed(
        lambda: scatter_add(C, rows, vals, B_rows), KERNEL_REPEATS
    )
    segmented_seconds, _ = _timed(
        lambda: scatter_add_segmented(
            C, rows, vals, B_rows,
            order=order, seg_starts=seg_starts, out_rows=out_rows,
        ),
        KERNEL_REPEATS,
    )

    # One clean application of each kernel pins the numerics.
    want = np.zeros_like(C)
    scatter_add(want, rows, vals, B_rows)
    got = np.zeros_like(C)
    scatter_add_segmented(
        got, rows, vals, B_rows,
        order=order, seg_starts=seg_starts, out_rows=out_rows,
    )
    np.testing.assert_allclose(got, want, rtol=1e-12, atol=1e-13)

    return {
        "matrix": name,
        "structural_class": SUITE[name].structural_class,
        "k": K,
        "nnz": int(A.nnz),
        "unique_out_rows": int(len(out_rows)),
        "duplicates_per_row": float(A.nnz / max(1, len(out_rows))),
        "atomic_wall_seconds": atomic_seconds,
        "segmented_wall_seconds": segmented_seconds,
        "speedup": atomic_seconds / segmented_seconds,
        "allclose_rtol": 1e-12,
    }


# ----------------------------------------------------------------------
def run_e2e_experiment(harness, machine):
    """Repeated executions of one plan, segmented vs atomic scatter."""
    A = harness.matrix(E2E_MATRIX)
    B = harness.dense_input(E2E_MATRIX, K)
    first = TwoFace(coeffs=harness.coeffs, force_all_async=True)
    first.run(A, B, machine)
    plan = first.last_plan
    ceilings = arena_ceilings(plan, K)

    def execute():
        return TwoFace(coeffs=harness.coeffs, plan=plan).run(A, B, machine)

    out = {
        "matrix": E2E_MATRIX,
        "algorithm": "TwoFace(force_all_async)",
        "k": K,
        "n_nodes": machine.n_nodes,
        "repeats": E2E_REPEATS,
        "pooled_width": POOLED_WIDTH,
        "host_cpus": os.cpu_count(),
    }
    results = {}
    scatter_deltas = {}
    blobs = {}
    for mode in ("segmented", "atomic"):
        for width in (1, POOLED_WIDTH):
            key = f"{mode}_w{width}"
            with env_var(SCATTER_ENV, mode), pool_width(width):
                reset_arenas(release_buffers=True)
                warm_arenas(get_exec_pool(), ceilings)
                execute()  # warm-up execution outside the arena window
                warm = arena_stats()
                before = scatter_stats().snapshot()
                started = time.perf_counter()
                runs = [execute() for _ in range(E2E_REPEATS)]
                seconds = (time.perf_counter() - started) / E2E_REPEATS
                steady = arena_stats()
                scatter_deltas[key] = tuple(
                    now - b
                    for now, b in zip(scatter_stats().snapshot(), before)
                )
                results[key] = runs[-1]
                blobs[key] = {run.C.tobytes() for run in runs}
                out[f"{key}_wall_seconds_per_execution"] = seconds
                out[f"{key}_arena_steady_grows"] = steady.grows - warm.grows
                out[f"{key}_arena_steady_hits"] = steady.hits - warm.hits

    # Contract 1: the simulation is bitwise mode- and width-blind.
    reference = results["segmented_w1"]
    for key, result in results.items():
        assert not result.failed
        assert result.seconds == reference.seconds
        for node_a, node_b in zip(
            result.breakdown.nodes, reference.breakdown.nodes
        ):
            assert node_a == node_b
        assert result.traffic == reference.traffic
        assert result.events == reference.events

    # Contract 2: C is byte-reproducible across runs and widths within a
    # mode (the plan-time permutation fixes the summation order)...
    for mode in ("segmented", "atomic"):
        mode_blobs = blobs[f"{mode}_w1"] | blobs[f"{mode}_w{POOLED_WIDTH}"]
        assert len(mode_blobs) == 1
    # ...and only allclose ACROSS modes (summation order differs).
    np.testing.assert_allclose(
        results["segmented_w1"].C, results["atomic_w1"].C, rtol=1e-12
    )

    # Contract 3: zero steady-state allocations at every width.
    for key in results:
        assert out[f"{key}_arena_steady_grows"] == 0
        assert out[f"{key}_arena_steady_hits"] > 0

    # The kernels report through their own counters.
    total_stripes = plan.total_async_stripes()
    for mode, field in (("segmented", 0), ("atomic", 1)):
        for width in (1, POOLED_WIDTH):
            delta = scatter_deltas[f"{mode}_w{width}"]
            assert delta[field] == E2E_REPEATS * total_stripes
            assert delta[1 - field] == 0

    out["simulated_seconds"] = reference.seconds
    out["total_async_stripes"] = total_stripes
    out["scatter_counters"] = {
        key: list(delta) for key, delta in scatter_deltas.items()
    }
    out["bitwise_simulation"] = True
    out["c_bytes_deterministic"] = True
    out["speedup_serial"] = (
        out["atomic_w1_wall_seconds_per_execution"]
        / out["segmented_w1_wall_seconds_per_execution"]
    )
    out["speedup_pooled"] = (
        out[f"atomic_w{POOLED_WIDTH}_wall_seconds_per_execution"]
        / out[f"segmented_w{POOLED_WIDTH}_wall_seconds_per_execution"]
    )
    return out, scatter_deltas


# ----------------------------------------------------------------------
def test_pr4_perf_telemetry(benchmark, harness, results_dir):
    machine = MachineConfig(n_nodes=N_NODES)
    log = PerfLog(label="BENCH_PR4")

    def run_all():
        kernels = [
            run_kernel_experiment(harness, name)
            for name in KERNEL_MATRICES
        ]
        e2e, deltas = run_e2e_experiment(harness, machine)
        return kernels, e2e, deltas

    kernels, e2e, deltas = benchmark.pedantic(run_all, rounds=1, iterations=1)

    for record in kernels:
        log.record_experiment(f"kernel_{record['matrix']}", record)
    for mode in ("segmented", "atomic"):
        for width in (1, POOLED_WIDTH):
            key = f"{mode}_w{width}"
            log.record_cell(
                name=f"{E2E_MATRIX}/TwoFace/k{K}/{key}",
                matrix=E2E_MATRIX,
                algorithm=f"TwoFace(scatter={mode})",
                k=K,
                n_nodes=N_NODES,
                wall_seconds=e2e[f"{key}_wall_seconds_per_execution"],
                simulated_seconds=e2e["simulated_seconds"],
            )
            # Counters were captured around each phase by hand (the
            # snapshot-delta helper assumes one global phase).
            cell = log.cells[-1]
            cell.arena_hits = e2e[f"{key}_arena_steady_hits"]
            cell.arena_grows = e2e[f"{key}_arena_steady_grows"]
            delta = deltas[key]
            cell.scatter_segmented = delta[0]
            cell.scatter_atomic = delta[1]
            cell.sync_csr_hits = delta[2]
            cell.sync_csr_builds = delta[3]
    log.record_experiment("repeated_execution", e2e)
    log.write(REPO_ROOT / "BENCH_PR4.json")

    emit(
        results_dir,
        "pr4_perf",
        ["metric", "value"],
        [
            [f"kernel.{record['matrix']}.{key}", record[key]]
            for record in kernels
            for key in (
                "nnz", "duplicates_per_row",
                "atomic_wall_seconds", "segmented_wall_seconds", "speedup",
            )
        ]
        + [
            [f"e2e.{key}", e2e[key]]
            for key in sorted(e2e)
            if key != "scatter_counters"
        ],
        "Segmented scatter engine: kernel and end-to-end speedups",
    )

    # Determinism held (asserted inside the experiment) and the arenas
    # reached steady state at every (mode, width).
    assert e2e["bitwise_simulation"] and e2e["c_bytes_deterministic"]
    # The headline speedups hold at default scale; small smoke matrices
    # amortise the kernel too little, so they record without asserting.
    if bench_size() == "default":
        for record in kernels:
            assert record["speedup"] >= KERNEL_SPEEDUP_FLOOR, record
        assert e2e["speedup_serial"] >= E2E_SPEEDUP_FLOOR, e2e
