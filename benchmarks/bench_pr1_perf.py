"""Perf telemetry for the cached-plan async fast path (``BENCH_PR1.json``).

Two measurements, both host-side (simulated seconds must not move):

* A small (matrix x algorithm) sweep recording per-cell wall seconds,
  simulated seconds, and transfer-schedule cache counters.
* A repeated-execution experiment — the GNN/inference pattern of many
  SpMMs against one finalised plan — comparing the cached fast path
  (precomputed transfer schedules, vectorised coalescing, one-gather
  rget) against a faithful re-enactment of the seed code path (scalar
  coalescing loop, per-chunk ``np.arange`` concatenation, per-chunk
  rget slicing, schedules rebuilt every execution).  The cached path
  must be at least 2x faster per execution, with bit-identical ``C``
  and simulated seconds equal to 1e-9 relative tolerance.

Everything lands in ``BENCH_PR1.json`` at the repository root (schema:
see ``repro.bench.telemetry``).
"""

import pathlib
import time
from unittest import mock

import numpy as np

from repro.algorithms.twoface import TwoFace
from repro.bench import PerfLog
from repro.cluster.simmpi import SimMPI
from repro.core import formats
from repro.core.formats import transfer_cache_stats
from repro.sparse.ops import _coalesce_row_ids_reference

from conftest import bench_size, emit

REPO_ROOT = pathlib.Path(__file__).parent.parent

SWEEP_MATRICES = ["kmer", "mawi", "web"]
SWEEP_ALGORITHMS = ["TwoFace", "AsyncFine"]
K = 32
REPEATS = 5


# ----------------------------------------------------------------------
# Seed-equivalent implementations (the pre-caching per-execution work)
# ----------------------------------------------------------------------
def _seed_coalesce_arrays(row_ids, max_gap=1):
    chunks = _coalesce_row_ids_reference(row_ids, max_gap=max_gap)
    if not chunks:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    offsets, sizes = zip(*chunks)
    return (
        np.asarray(offsets, dtype=np.int64),
        np.asarray(sizes, dtype=np.int64),
    )


def _seed_expand(offsets, sizes):
    parts = [
        np.arange(first, first + count)
        for first, count in zip(offsets.tolist(), sizes.tolist())
    ]
    return np.concatenate(parts) if parts else np.zeros(0, dtype=np.int64)


def _seed_rget_row_chunks(self, origin, target, source, offsets, sizes,
                          label, rows=None, charge_memory=True,
                          charge_time=True):
    chunks = list(zip(offsets.tolist(), sizes.tolist()))
    return SimMPI.rget_rows(
        self, origin, target, source, chunks, label,
        charge_memory=charge_memory, charge_time=charge_time,
    )


def _clear_schedules(plan):
    for rank_plan in plan.ranks:
        for stripe in rank_plan.async_matrix.stripes:
            stripe.schedule = None


def _seed_equivalent():
    """Patch the fast paths back to seed behaviour (context manager)."""
    patches = [
        mock.patch.object(
            formats, "coalesce_row_id_arrays", _seed_coalesce_arrays
        ),
        mock.patch.object(formats, "expand_chunks", _seed_expand),
        mock.patch.object(SimMPI, "rget_row_chunks", _seed_rget_row_chunks),
    ]

    class _All:
        def __enter__(self):
            for p in patches:
                p.start()

        def __exit__(self, *exc):
            for p in patches:
                p.stop()

    return _All()


# ----------------------------------------------------------------------
def run_repeat_experiment(harness, machine):
    """Repeated executions of one finalised plan: cached vs seed."""
    A = harness.matrix("kmer")
    B = harness.dense_input("kmer", K)
    first = TwoFace(coeffs=harness.coeffs, force_all_async=True)
    first.run(A, B, machine)
    plan = first.last_plan

    snap = transfer_cache_stats().snapshot()
    started = time.perf_counter()
    for _ in range(REPEATS):
        cached_result = TwoFace(coeffs=harness.coeffs, plan=plan).run(
            A, B, machine
        )
    cached_seconds = (time.perf_counter() - started) / REPEATS
    stats = transfer_cache_stats()
    cache_hits = stats.hits - snap[0]
    cache_recomputes = stats.recomputes - snap[1]

    with _seed_equivalent():
        started = time.perf_counter()
        for _ in range(REPEATS):
            _clear_schedules(plan)
            seed_result = TwoFace(coeffs=harness.coeffs, plan=plan).run(
                A, B, machine
            )
        seed_seconds = (time.perf_counter() - started) / REPEATS
    plan.ensure_finalized()

    sim_rel_diff = abs(cached_result.seconds - seed_result.seconds) / max(
        abs(seed_result.seconds), 1e-300
    )
    return {
        "matrix": "kmer",
        "algorithm": "TwoFace(force_all_async)",
        "k": K,
        "n_nodes": machine.n_nodes,
        "repeats": REPEATS,
        "cached_wall_seconds_per_execution": cached_seconds,
        "seed_wall_seconds_per_execution": seed_seconds,
        "speedup": seed_seconds / cached_seconds,
        "simulated_seconds": cached_result.seconds,
        "simulated_rel_diff_vs_seed": sim_rel_diff,
        "bit_identical_C": bool(
            np.array_equal(cached_result.C, seed_result.C)
        ),
        "cache_hits": cache_hits,
        "cache_recomputes": cache_recomputes,
    }


def test_pr1_perf_telemetry(benchmark, harness, machine32, results_dir):
    log = PerfLog(label="BENCH_PR1")

    for matrix in SWEEP_MATRICES:
        for algorithm in SWEEP_ALGORITHMS:
            snap = transfer_cache_stats().snapshot()
            result = harness.run_one(matrix, algorithm, K, machine32)
            log.record_cell(
                name=f"{matrix}/{algorithm}/k{K}",
                matrix=matrix,
                algorithm=algorithm,
                k=K,
                n_nodes=machine32.n_nodes,
                wall_seconds=result.extras.get("wall_seconds"),
                simulated_seconds=None if result.failed else result.seconds,
                cache_snapshot=snap,
            )

    repeat = benchmark.pedantic(
        run_repeat_experiment, args=(harness, machine32), rounds=1,
        iterations=1,
    )
    log.record_experiment("repeated_execution", repeat)
    log.write(REPO_ROOT / "BENCH_PR1.json")

    emit(
        results_dir,
        "pr1_perf",
        ["metric", "value"],
        [[key, repeat[key]] for key in sorted(repeat)],
        "Cached-plan fast path vs seed-equivalent per-execution cost",
    )

    # Simulated behaviour is untouched; only host time moved.
    assert repeat["simulated_rel_diff_vs_seed"] <= 1e-9
    assert repeat["bit_identical_C"]
    # Cached rounds never rebuild a schedule.
    assert repeat["cache_recomputes"] == 0
    assert repeat["cache_hits"] > 0
    # The headline: second-and-later executions of a finalised plan.
    floor = 2.0 if bench_size() == "default" else 1.0
    assert repeat["speedup"] >= floor
