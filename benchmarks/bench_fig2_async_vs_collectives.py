"""Figure 2: speedup of Async Fine over AllGather (full replication).

Paper shape: async wins on web/queen/stokes/arabic, collectives win on
mawi/twitter/friendster; kmer at K=128 has no AllGather data point
because full replication exceeds node memory.
"""

import math

from repro.sparse import suite

from conftest import emit


def run_fig2(harness, machine32):
    rows = []
    for name in suite.matrix_names():
        row = [name]
        for k in (32, 128):
            fine = harness.run_one(name, "AsyncFine", k, machine32)
            gather = harness.run_one(name, "Allgather", k, machine32)
            if gather.failed or fine.failed:
                row.append(float("nan"))
            else:
                row.append(gather.seconds / fine.seconds)
        rows.append(row)
    return rows


def test_fig2_async_vs_collectives(
    benchmark, harness, machine32, results_dir
):
    rows = benchmark.pedantic(
        run_fig2, args=(harness, machine32), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "fig2_async_vs_collectives",
        ["matrix", "K=32 speedup", "K=128 speedup"],
        rows,
        "Fig. 2 - Async Fine speedup over AllGather collectives "
        "(>1 = async better; OOM reproduces the paper's missing kmer "
        "K=128 point)",
    )
    by_name = {row[0]: row for row in rows}
    # Async-friendly half wins at K=32.
    for name in ("web", "queen", "stokes", "arabic"):
        assert by_name[name][1] > 1.0
    # Collective-friendly matrices lose.
    for name in ("mawi", "twitter", "friendster"):
        assert by_name[name][1] < 1.0
    # kmer K=128: AllGather out of memory, like the paper.
    assert math.isnan(by_name["kmer"][2])
