"""§5.4 / §7.3: full-graph GCN training with Two-Face as the SpMM
backend — preprocessing amortisation in a real application.
"""

from repro import MachineConfig
from repro.algorithms import DenseShifting
from repro.gnn import planted_partition, train_gcn

from conftest import emit


def run_gnn(harness):
    machine = MachineConfig(n_nodes=16, memory_capacity=1 << 30)
    dataset = planted_partition(
        4096, n_classes=16, intra_fraction=0.95, avg_degree=12,
        feature_dim=32, seed=3,
    )
    report = train_gcn(
        dataset, machine, hidden_dim=32, epochs=6, lr=0.5,
        coeffs=harness.coeffs,
        baseline_factory=lambda: DenseShifting(2),
    )
    return report


def test_gnn_amortization(benchmark, harness, results_dir):
    report = benchmark.pedantic(run_gnn, args=(harness,), rounds=1,
                                iterations=1)
    rows = [
        ["train accuracy", report.train_accuracy],
        ["loss first epoch", report.losses[0]],
        ["loss last epoch", report.losses[-1]],
        ["SpMM ops", report.spmm_ops],
        ["Two-Face SpMM seconds", report.spmm_seconds],
        ["Two-Face preprocessing seconds", report.preprocess_seconds],
        ["DS2 SpMM seconds (same schedule)", report.baseline_spmm_seconds],
        ["ops to amortise preprocessing", report.amortization_ops],
        ["epochs to amortise (4 SpMM/epoch)",
         None if report.amortization_ops is None
         else report.amortization_ops / 4],
    ]
    emit(
        results_dir,
        "gnn_amortization",
        ["metric", "value"],
        rows,
        "§5.4/§7.3 - full-graph GCN training: Two-Face preprocessing "
        "amortisation (paper: amortises well within one training run)",
    )
    assert report.losses[-1] < report.losses[0]
    assert report.amortization_ops is not None
    # GNN training runs for hundreds of epochs; amortisation must land
    # well inside that.
    assert report.amortization_ops < 250 * 4
