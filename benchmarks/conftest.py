"""Shared fixtures for the paper-reproduction benchmarks.

Every benchmark regenerates one of the paper's tables or figures and
writes the rows/series to ``benchmarks/results/<name>.txt`` (pytest
captures stdout, so files are the reliable artefact) in addition to
printing them.

Set ``REPRO_BENCH_SIZE=small`` to run the whole benchmark suite on
quarter-scale matrices (useful for smoke runs).
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro import MachineConfig
from repro.bench import ExperimentHarness, format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def bench_size() -> str:
    return os.environ.get("REPRO_BENCH_SIZE", "default")


@pytest.fixture(scope="session")
def harness():
    """Matrix/input cache shared across all benchmarks in a session."""
    return ExperimentHarness(size=bench_size())


@pytest.fixture(scope="session")
def machine32():
    """The paper's default platform: 32 nodes."""
    return MachineConfig(n_nodes=32)


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir, name, headers, rows, title):
    """Print a table and persist it under benchmarks/results/."""
    table = format_table(headers, rows, title=title)
    print("\n" + table + "\n")
    (results_dir / f"{name}.txt").write_text(table + "\n")
    return table
