"""Figure 7: speedups of all SpMM algorithms over DS2 at K=32.

Paper shape: Two-Face is the fastest algorithm on the locality-heavy
matrices (web, queen, stokes, arabic) and on average; dense shifting
wins on twitter/friendster; Async Fine collapses on social graphs.
"""

from speedup_common import emit_speedups, run_speedup_sweep, twoface_speedup


def test_fig7_speedups_k32(benchmark, harness, machine32, results_dir):
    rows, _ = benchmark.pedantic(
        run_speedup_sweep, args=(harness, machine32, 32),
        rounds=1, iterations=1,
    )
    emit_speedups(
        results_dir,
        "fig7_speedups_k32",
        "Fig. 7 - speedup over DS2, p=32, K=32 (OOM = failed run)",
        rows,
    )
    for name in ("web", "queen", "stokes", "arabic"):
        assert twoface_speedup(rows, name) > 1.5
    for name in ("twitter", "friendster"):
        assert twoface_speedup(rows, name) < 1.0
