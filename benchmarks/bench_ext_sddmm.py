"""Extension bench: distributed SDDMM (paper §9).

The paper claims Two-Face "should also be applicable to ... SDDMM,
which exhibits very similar patterns to SpMM".  This bench evaluates
that claim on the full matrix suite: Two-Face SDDMM vs full-replication
SDDMM, with the Two-Face plan *shared with SpMM* to demonstrate the
pattern identity.
"""

from repro.algorithms import AllGatherSDDMM, TwoFace, TwoFaceSDDMM
from repro.sparse import suite

from conftest import emit

import numpy as np


def run_sddmm(harness, machine32):
    rows = []
    rng = np.random.default_rng(3)
    for name in suite.matrix_names():
        A = harness.matrix(name)
        k = 128
        X = rng.standard_normal((A.shape[0], k))
        Y = harness.dense_input(name, k)  # plays the role of SpMM's B
        spmm = TwoFace(coeffs=harness.coeffs)
        spmm_result = spmm.run(A, Y, machine32)
        shared_plan = spmm.last_plan if not spmm_result.failed else None

        twoface = TwoFaceSDDMM(plan=shared_plan, coeffs=harness.coeffs)
        tf = twoface.run(A, X, Y, machine32)
        ag = AllGatherSDDMM().run(A, X, Y, machine32)
        rows.append(
            [
                name,
                float("nan") if ag.failed else ag.seconds,
                float("nan") if tf.failed else tf.seconds,
                float("nan") if (ag.failed or tf.failed)
                else ag.seconds / tf.seconds,
                float("nan") if spmm_result.failed else spmm_result.seconds,
            ]
        )
    return rows


def test_ext_sddmm(benchmark, harness, machine32, results_dir):
    rows = benchmark.pedantic(
        run_sddmm, args=(harness, machine32), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "ext_sddmm",
        ["matrix", "AllGather SDDMM (s)", "Two-Face SDDMM (s)",
         "speedup (x)", "Two-Face SpMM (s, same plan)"],
        rows,
        "Extension (§9) - distributed SDDMM at K=128, Two-Face plan "
        "shared with SpMM",
    )
    by_name = {row[0]: row for row in rows}
    # The SpMM winners win at SDDMM too (same communication structure).
    for name in ("web", "queen", "stokes", "arabic"):
        assert by_name[name][3] > 1.5
    # SDDMM cost tracks SpMM cost for the same plan within a small
    # factor (compute differs, communication is identical).
    for row in rows:
        if row[2] == row[2] and row[4] == row[4]:
            assert row[2] < 3 * row[4] + 1e-6
