"""Ablation: the sync/async thread split (Table 2).

The paper dedicates 2 async-comm + 8 async-comp threads of 128 and
leaves 120 for sync compute.  This sweep varies the async team size on a
matrix with a real async load (web) and on an all-sync matrix (queen) to
show why a small, fixed async team is a sound default.
"""

from repro.algorithms import TwoFace
from repro.runtime import ThreadConfig

from conftest import emit

SPLITS = (
    ("paper (2+8)", ThreadConfig(total=128, async_comm=2, async_comp=8)),
    ("tiny (1+2)", ThreadConfig(total=128, async_comm=1, async_comp=2)),
    ("big (8+32)", ThreadConfig(total=128, async_comm=8, async_comp=32)),
    ("huge (16+64)", ThreadConfig(total=128, async_comm=16, async_comp=64)),
)


def run_thread_ablation(harness, machine32):
    rows = []
    for name in ("web", "kmer", "queen"):
        A = harness.matrix(name)
        B = harness.dense_input(name, 128)
        row = [name]
        for _, threads in SPLITS:
            result = TwoFace(coeffs=harness.coeffs).run(
                A, B, machine32, threads=threads
            )
            row.append(result.seconds)
        rows.append(row)
    return rows


def test_ablation_threads(benchmark, harness, machine32, results_dir):
    rows = benchmark.pedantic(
        run_thread_ablation, args=(harness, machine32), rounds=1,
        iterations=1,
    )
    emit(
        results_dir,
        "ablation_threads",
        ["matrix"] + [label for label, _ in SPLITS],
        rows,
        "Ablation - Two-Face time vs async thread allocation at K=128 "
        "(classification is fixed; only the runtime split varies)",
    )
    by_name = {row[0]: row for row in rows}
    # Paper split is within 30% of the sweep's best everywhere.
    for row in rows:
        assert row[1] <= 1.3 * min(row[1:]), row[0]
    # Starving async compute hurts async-heavy matrices.
    assert by_name["kmer"][2] >= by_name["kmer"][1]
