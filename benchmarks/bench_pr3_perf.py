"""Perf telemetry for the planning pipeline (``BENCH_PR3.json``).

Three measurements, all host-side (simulated seconds must not move):

* Cold vs warm planning through the content-addressed plan cache: a
  cold ``cached_preprocess`` (classify + build + store) against a warm
  memory-layer hit and a warm disk-layer hit (fresh cache instance,
  same directory).  The memory hit must be >= 5x faster than the cold
  build; the counters confirm which layer served each call.
* Parallel planning: the same plan built at ``REPRO_PLAN_WORKERS`` 1
  vs 4, with ``plan_digest`` equality proving the fanned-out build is
  bitwise identical to the serial one.
* End-to-end fidelity: one SpMM executed from the cold-built plan and
  one from a cache-hit plan — bitwise identical C and identical
  simulated seconds, i.e. the cache changes where the plan comes from,
  never what it computes.

Everything lands in ``BENCH_PR3.json`` at the repository root (schema
``repro-perf/3``; see ``repro.bench.telemetry``).
"""

import os
import pathlib
import time

import numpy as np

from repro import MachineConfig
from repro.algorithms.twoface import TwoFace
from repro.bench import PerfLog
from repro.core.plancache import (
    PlanCache,
    PlanCacheStats,
    cached_preprocess,
    plan_cache_stats,
    reset_plan_cache_stats,
)
from repro.core.preprocess import preprocess
from repro.core.serialize import plan_digest
from repro.dist import DistSparseMatrix, RowPartition
from repro.runtime.pool import shutdown_plan_pool
from repro.sparse.suite import stripe_width_for

from conftest import bench_size, emit

REPO_ROOT = pathlib.Path(__file__).parent.parent

MATRIX = "kmer"  # Table 1's most async-heavy matrix
K = 32
N_NODES = 8
WARM_REPEATS = 5
PLAN_WIDTH = 4
WARM_SPEEDUP_FLOOR = 5.0


def _dist(harness):
    A = harness.matrix(MATRIX)
    return DistSparseMatrix(A, RowPartition(A.shape[0], N_NODES))


def run_cache_experiment(harness, machine, cache_dir):
    """Cold build vs memory-layer hit vs disk-layer hit."""
    dist = _dist(harness)
    width = stripe_width_for(dist.shape[0])
    out = {
        "matrix": MATRIX,
        "k": K,
        "n_nodes": N_NODES,
        "stripe_width": width,
        "warm_repeats": WARM_REPEATS,
    }

    cache = PlanCache(cache_dir=cache_dir, stats=PlanCacheStats())
    started = time.perf_counter()
    cold_plan, cold_rep = cached_preprocess(
        dist, K, width, machine=machine, coeffs=harness.coeffs,
        cache=cache,
    )
    out["cold_wall_seconds"] = time.perf_counter() - started
    assert not cold_rep.cache_hit
    assert cache.stats.snapshot() == (0, 1, 0, 0, 1)

    def timed_warm(use_cache):
        best = float("inf")
        plan = rep = None
        for _ in range(WARM_REPEATS):
            started = time.perf_counter()
            plan, rep = cached_preprocess(
                dist, K, width, machine=machine, coeffs=harness.coeffs,
                cache=use_cache,
            )
            best = min(best, time.perf_counter() - started)
        return best, plan, rep

    out["memory_warm_wall_seconds"], mem_plan, mem_rep = timed_warm(cache)
    assert mem_rep.cache_hit
    disk_cache = PlanCache(cache_dir=cache_dir, stats=PlanCacheStats())
    started = time.perf_counter()
    disk_plan, disk_rep = cached_preprocess(
        dist, K, width, machine=machine, coeffs=harness.coeffs,
        cache=disk_cache,
    )
    out["disk_warm_wall_seconds"] = time.perf_counter() - started
    assert disk_rep.cache_hit
    assert disk_cache.stats.hits == 1

    for plan in (mem_plan, disk_plan):
        assert plan_digest(plan) == plan_digest(cold_plan)
    # A hit re-derives the report: identical modelled Table 6 numbers.
    assert mem_rep.modeled_seconds == cold_rep.modeled_seconds
    assert mem_rep.n_stripes_scored == cold_rep.n_stripes_scored

    out["memory_warm_speedup"] = (
        out["cold_wall_seconds"] / out["memory_warm_wall_seconds"]
    )
    out["disk_warm_speedup"] = (
        out["cold_wall_seconds"] / out["disk_warm_wall_seconds"]
    )
    out["cache_stats"] = dict(
        zip(
            ("hits", "misses", "evictions", "invalidations", "stores"),
            cache.stats.snapshot(),
        )
    )
    out["bit_identical"] = True
    return out, cold_plan


def run_parallel_plan_experiment(harness, machine):
    """The same plan built serial vs fanned across the planning pool."""
    dist = _dist(harness)
    width = stripe_width_for(dist.shape[0])
    out = {
        "matrix": MATRIX,
        "k": K,
        "n_nodes": N_NODES,
        "plan_workers": PLAN_WIDTH,
        "host_cpus": os.cpu_count(),
    }
    digests = {}
    for name, workers in (("serial", 1), ("parallel", PLAN_WIDTH)):
        shutdown_plan_pool()
        plan = None
        started = time.perf_counter()
        for _ in range(3):
            plan, _ = preprocess(
                dist, K, width, machine=machine, coeffs=harness.coeffs,
                plan_workers=workers,
            )
        out[f"{name}_wall_seconds"] = (time.perf_counter() - started) / 3
        digests[name] = plan_digest(plan)
    shutdown_plan_pool()
    assert digests["serial"] == digests["parallel"]
    out["bit_identical"] = True
    out["speedup"] = (
        out["serial_wall_seconds"] / out["parallel_wall_seconds"]
    )
    return out


def run_fidelity_experiment(harness, machine, cold_plan, cache_dir):
    """A cache-hit plan must execute exactly like the cold-built one."""
    A = harness.matrix(MATRIX)
    B = harness.dense_input(MATRIX, K)
    cold = TwoFace(coeffs=harness.coeffs, plan=cold_plan).run(A, B, machine)

    warm_algo = TwoFace(
        coeffs=harness.coeffs,
        stripe_width=stripe_width_for(A.shape[0]),
        plan_cache=PlanCache(cache_dir=cache_dir, stats=PlanCacheStats()),
    )
    warm = warm_algo.run(A, B, machine)
    assert warm_algo.last_report.cache_hit
    np.testing.assert_array_equal(warm.C, cold.C)
    assert warm.seconds == cold.seconds
    for node_c, node_w in zip(cold.breakdown.nodes, warm.breakdown.nodes):
        assert node_c == node_w
    return {
        "matrix": MATRIX,
        "k": K,
        "n_nodes": N_NODES,
        "simulated_seconds_cold_plan": cold.seconds,
        "simulated_seconds_cached_plan": warm.seconds,
        "bit_identical_output": True,
    }


# ----------------------------------------------------------------------
def test_pr3_perf_telemetry(benchmark, harness, results_dir, tmp_path):
    machine = MachineConfig(n_nodes=N_NODES)
    cache_dir = tmp_path / "plans"
    log = PerfLog(label="BENCH_PR3")
    reset_plan_cache_stats()

    def run_all():
        cache, cold_plan = run_cache_experiment(
            harness, machine, cache_dir
        )
        parallel = run_parallel_plan_experiment(harness, machine)
        fidelity = run_fidelity_experiment(
            harness, machine, cold_plan, cache_dir
        )
        return cache, parallel, fidelity

    cache, parallel, fidelity = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )

    plan_before = (0, 0, 0, 0, 0)
    for name, wall in (
        ("cold", cache["cold_wall_seconds"]),
        ("warm_memory", cache["memory_warm_wall_seconds"]),
        ("warm_disk", cache["disk_warm_wall_seconds"]),
    ):
        log.record_cell(
            name=f"{MATRIX}/plan/k{K}/{name}",
            matrix=MATRIX,
            algorithm="TwoFace(plan)",
            k=K,
            n_nodes=N_NODES,
            wall_seconds=wall,
            simulated_seconds=fidelity["simulated_seconds_cold_plan"],
            plan_snapshot=plan_before,
        )
    # The per-phase counters were captured inside the experiment on a
    # private stats sink; surface the totals on the cold cell.
    log.cells[0].plan_misses = cache["cache_stats"]["misses"]
    log.cells[0].plan_stores = cache["cache_stats"]["stores"]
    log.cells[1].plan_hits = cache["cache_stats"]["hits"]
    log.cells[2].plan_hits = 1
    log.record_experiment("plan_cache", cache)
    log.record_experiment("parallel_planning", parallel)
    log.record_experiment("execution_fidelity", fidelity)
    log.write(REPO_ROOT / "BENCH_PR3.json")

    emit(
        results_dir,
        "pr3_perf",
        ["metric", "value"],
        [[key, cache[key]] for key in sorted(cache) if key != "cache_stats"]
        + [[f"parallel.{key}", parallel[key]] for key in sorted(parallel)]
        + [[f"fidelity.{key}", fidelity[key]] for key in sorted(fidelity)],
        "Plan cache: cold vs warm planning; parallel planning",
    )

    # Determinism held (asserted inside the experiments); the simulated
    # seconds are identical whichever way the plan was obtained.
    assert cache["bit_identical"] and parallel["bit_identical"]
    assert (
        fidelity["simulated_seconds_cold_plan"]
        == fidelity["simulated_seconds_cached_plan"]
    )
    # The headline warm speedup: a memory-layer hit skips
    # classification and construction entirely.
    if bench_size() == "default":
        assert cache["memory_warm_speedup"] >= WARM_SPEEDUP_FLOOR
    assert plan_cache_stats().snapshot() == (0, 0, 0, 0, 0)  # private sinks
