"""Resilient serving under chaos (``BENCH_PR10.json``).

Replays the acceptance trace — bursty, hot-matrix-skewed requests
against the async-heavy ``kmer`` analogue — through the replicated
resilient scheduler under chaos intensity 0.5 (all four fault classes
plus injected executor crashes at rate 0.2 per dispatch attempt), and
through a single-executor baseline (one replica, no retries, no
hedging) under the *same* fault seeds.

Contracts asserted here:

* the replicated scheduler sustains >= 99% availability under chaos;
* its p99 latency is strictly better than the single-executor
  baseline's.  The comparison uses the *effective* p99 over all
  submitted requests, counting a failed request as unserved (infinite
  latency) — the summary's ``p99_latency`` covers completed requests
  only, which would flatter a baseline that fails a third of its
  traffic in one quick crash each;
* every *completed* request's output slice is byte-identical to its
  fault-free run (PR 5's exactness contract carried through the
  serving tier);
* the same seeds replay with identical routing traces and
  retry/hedge/breaker/shed counters at ``REPRO_EXEC_WORKERS`` widths
  1 and 4.

The trajectory lands in ``BENCH_PR10.json`` at the repository root
(schema ``repro-perf/10``; see ``repro.bench.telemetry``).
"""

import contextlib
import os
import pathlib
import time

from repro import MachineConfig
from repro.bench import PerfLog
from repro.cluster.faults import FaultConfig
from repro.runtime.pool import WORKERS_ENV, shutdown_exec_pool
from repro.serve import (
    DONE,
    ResiliencePolicy,
    ResilientScheduler,
    ServePolicy,
    ServeScheduler,
    hot_matrix_trace,
)
from repro.sparse import suite

from conftest import emit

REPO_ROOT = pathlib.Path(__file__).parent.parent

HOT_MATRIX = "kmer"
MATRIX_SIZE = "tiny"
N_NODES = 8
REQUEST_K = 8
N_REQUESTS = 48
TRACE_SEED = 7
BURST_SIZE = 8
BURST_GAP = 0.25
MAX_FUSED_K = 64
MAX_BATCH_DELAY = 0.05
POOLED_WIDTH = 4

CHAOS_INTENSITY = 0.5
CRASH_RATE = 0.4 * CHAOS_INTENSITY
FAULT_SEED = 11
N_REPLICAS = 3
MAX_RETRIES = 4
HEDGE_DELAY = 0.05

AVAILABILITY_FLOOR = 0.99


@contextlib.contextmanager
def pool_width(width: int):
    """Pin ``REPRO_EXEC_WORKERS`` and rebuild the global pool."""
    old = os.environ.get(WORKERS_ENV)
    os.environ[WORKERS_ENV] = str(width)
    shutdown_exec_pool()
    try:
        yield
    finally:
        if old is None:
            os.environ.pop(WORKERS_ENV, None)
        else:
            os.environ[WORKERS_ENV] = old
        shutdown_exec_pool()


def effective_p99(report) -> float:
    """p99 latency over *all* submitted requests; failed = unserved."""
    import math

    latencies = sorted(
        (o.latency if o.status == DONE else math.inf)
        for o in report.outcomes
    )
    return latencies[max(0, math.ceil(0.99 * len(latencies)) - 1)]


def chaos_faults() -> FaultConfig:
    return FaultConfig.from_intensity(
        CHAOS_INTENSITY, seed=FAULT_SEED,
        executor_crash_rate=CRASH_RATE,
    )


def policy() -> ServePolicy:
    # Classification pinned at the request width so degraded / shed /
    # re-batched dispatches still accumulate C in the reference order.
    return ServePolicy(
        max_fused_k=MAX_FUSED_K,
        max_batch_delay=MAX_BATCH_DELAY,
        max_queue_depth=4 * N_REQUESTS,
        classify_k=REQUEST_K,
    )


def replay(matrices, trace, resilience, faults):
    """One fresh resilient-scheduler replay: (report, wall_seconds)."""
    scheduler = ResilientScheduler(
        MachineConfig(n_nodes=N_NODES), matrices,
        policy=policy(), resilience=resilience, faults=faults,
    )
    started = time.perf_counter()
    report = scheduler.serve(trace, fuse=True)
    return report, time.perf_counter() - started


def run_resilience_experiment():
    matrices = {HOT_MATRIX: suite.load(HOT_MATRIX, size=MATRIX_SIZE)}
    trace = hot_matrix_trace(
        matrices, n_requests=N_REQUESTS, k=REQUEST_K, seed=TRACE_SEED,
        hot=HOT_MATRIX, burst_size=BURST_SIZE, burst_gap=BURST_GAP,
    )
    resilient_policy = ResiliencePolicy(
        n_replicas=N_REPLICAS, max_retries=MAX_RETRIES,
        hedge_delay=HEDGE_DELAY,
    )
    # The single-executor baseline runs under the *same* chaos but has
    # nowhere to route around it: one replica, no retries, no hedging.
    single_policy = ResiliencePolicy(n_replicas=1, max_retries=0)

    reports = {}
    walls = {}
    for width in (1, POOLED_WIDTH):
        with pool_width(width):
            reports[f"resilient_w{width}"], walls[f"resilient_w{width}"] = (
                replay(matrices, trace, resilient_policy, chaos_faults())
            )
            reports[f"single_w{width}"], walls[f"single_w{width}"] = (
                replay(matrices, trace, single_policy, chaos_faults())
            )

    # Fault-free reference for the exactness contract.
    reference = ServeScheduler(
        MachineConfig(n_nodes=N_NODES), matrices, policy=policy()
    ).serve(trace, fuse=True)
    ref_bytes = {
        o.request_id: o.C.tobytes()
        for o in reference.outcomes if o.status == DONE
    }

    # Contract 1: completed slices byte-identical to fault-free.
    for key, report in reports.items():
        for o in report.outcomes:
            if o.status == DONE:
                assert o.C.tobytes() == ref_bytes[o.request_id], (
                    key, o.request_id,
                )

    # Contract 2: same seeds replay identically at widths 1 and 4 —
    # routing, retries, hedges, breakers, sheds, and output bytes.
    for mode in ("resilient", "single"):
        narrow = reports[f"{mode}_w1"]
        wide = reports[f"{mode}_w{POOLED_WIDTH}"]
        assert narrow.counter_trace() == wide.counter_trace(), mode
        assert narrow.replica_stats == wide.replica_stats, mode
        assert narrow.serving_summary() == wide.serving_summary(), mode
        for a, b in zip(narrow.outcomes, wide.outcomes):
            assert a.status == b.status
            if a.status == DONE:
                assert a.C.tobytes() == b.C.tobytes()

    rs = reports["resilient_w1"].serving_summary()
    ss = reports["single_w1"].serving_summary()

    # Contract 3: availability and tail latency under chaos.
    res_p99 = effective_p99(reports["resilient_w1"])
    single_p99 = effective_p99(reports["single_w1"])
    assert rs["availability"] >= AVAILABILITY_FLOOR, (rs, ss)
    assert res_p99 < single_p99, (res_p99, single_p99, rs, ss)
    # The chaos actually bit: crashes were injected and recovered.
    assert reports["resilient_w1"].crashes > 0
    assert rs["availability"] >= ss["availability"]

    record = {
        "matrix": HOT_MATRIX,
        "matrix_size": MATRIX_SIZE,
        "n_nodes": N_NODES,
        "request_k": REQUEST_K,
        "n_requests": N_REQUESTS,
        "trace": "hot",
        "trace_seed": TRACE_SEED,
        "chaos_intensity": CHAOS_INTENSITY,
        "executor_crash_rate": CRASH_RATE,
        "fault_seed": FAULT_SEED,
        "n_replicas": N_REPLICAS,
        "max_retries": MAX_RETRIES,
        "hedge_delay": HEDGE_DELAY,
        "availability": rs["availability"],
        "single_availability": ss["availability"],
        # math.inf would serialise as non-standard JSON (`Infinity`).
        "effective_p99_latency": (
            res_p99 if res_p99 != float("inf") else "unserved"
        ),
        "single_effective_p99_latency": (
            single_p99 if single_p99 != float("inf") else "unserved"
        ),
        "completed_p99_latency": rs["p99_latency"],
        "single_completed_p99_latency": ss["p99_latency"],
        "byte_identical_to_fault_free": True,
        "replay_identical_across_widths": True,
        "pooled_width": POOLED_WIDTH,
        "host_cpus": os.cpu_count(),
        "resilient_summary": rs,
        "single_summary": ss,
    }
    return reports, walls, record


def test_pr10_resilient_serving(benchmark, results_dir):
    reports, walls, record = benchmark.pedantic(
        run_resilience_experiment, rounds=1, iterations=1
    )

    log = PerfLog(label="BENCH_PR10")
    for key, report in reports.items():
        log.record_serve_cell(
            name=f"{HOT_MATRIX}/serve-resilient/{key}",
            matrix=HOT_MATRIX,
            algorithm=f"TwoFace/{key.split('_')[0]}",
            k=REQUEST_K,
            n_nodes=N_NODES,
            serving=report.serving_summary(),
            wall_seconds=walls[key],
        )
    log.record_experiment("serving_resilience", record)
    log.write(REPO_ROOT / "BENCH_PR10.json")

    rs, ss = record["resilient_summary"], record["single_summary"]
    emit(
        results_dir,
        "pr10_resilience",
        ["metric", "resilient", "single"],
        [
            [name, rs[name], ss[name]]
            for name in (
                "completed", "failed", "availability", "retries",
                "hedges", "crashes", "timeouts", "breaker_opens",
                "p50_latency", "p99_latency", "requests_per_sec",
                "makespan",
            )
        ],
        "Serving resilience: replicated vs single executor under chaos",
    )

    assert record["availability"] >= AVAILABILITY_FLOOR
    res_p99 = record["effective_p99_latency"]
    single_p99 = record["single_effective_p99_latency"]
    assert res_p99 != "unserved"
    assert single_p99 == "unserved" or res_p99 < single_p99
