"""Figure 10: execution-time breakdown of DS4 vs Two-Face at K=128.

Per matrix, DS4's time (all synchronous) and Two-Face's two parallel
lanes (sync comm+comp | async comm+comp) plus Other, normalised to DS4.
Paper shape: DS4 is communication-dominated; Two-Face's lanes are far
smaller on the locality-heavy matrices; on twitter/friendster Two-Face's
sync communication exceeds DS4's; on mawi async compute is the limiter.
"""

from repro.sparse import suite

from conftest import emit


def run_fig10(harness, machine32):
    rows = []
    for name in suite.matrix_names():
        ds = harness.run_one(name, "DS4", 128, machine32)
        tf = harness.run_one(name, "TwoFace", 128, machine32)
        ds_mean = ds.breakdown.component_means()
        tf_mean = tf.breakdown.component_means()
        norm = ds.seconds if not ds.failed else float("nan")
        rows.append(
            [
                name,
                ds_mean.sync_comm / norm,
                ds_mean.sync_comp / norm,
                tf_mean.sync_comm / norm,
                tf_mean.sync_comp / norm,
                tf_mean.async_comm / norm,
                tf_mean.async_comp / norm,
                tf_mean.other / norm,
                tf.seconds / norm,
            ]
        )
    return rows


def test_fig10_breakdown(benchmark, harness, machine32, results_dir):
    rows = benchmark.pedantic(
        run_fig10, args=(harness, machine32), rounds=1, iterations=1
    )
    emit(
        results_dir,
        "fig10_breakdown",
        [
            "matrix", "DS4 sComm", "DS4 sComp", "2F sComm", "2F sComp",
            "2F aComm", "2F aComp", "2F other", "2F total",
        ],
        rows,
        "Fig. 10 - per-node mean time components normalised to DS4 "
        "total (Two-Face lanes run in parallel)",
    )
    by_name = {row[0]: row for row in rows}
    # DS4 is communication-bound everywhere.
    for row in rows:
        assert row[1] > row[2]
    # Locality-heavy matrices: Two-Face communicates far less than DS4.
    for name in ("web", "queen", "stokes", "arabic"):
        assert by_name[name][3] + by_name[name][5] < 0.5
    # mawi: a hard case — Two-Face gains nothing over DS4, and async
    # compute is a significant component (its known pathology).
    assert by_name["mawi"][8] > 0.9
    assert by_name["mawi"][6] > 0.15
    # twitter/friendster: Two-Face's sync communication exceeds half of
    # DS4's total despite moving less data (§7.1's multicast pathology).
    for name in ("twitter", "friendster"):
        assert by_name[name][3] > 0.45
